//! Wire frames: the length-prefixed, checksummed record format the
//! streaming ingest path speaks.
//!
//! In the deployment story, nodes upload their logs to the base station
//! over the same lossy serial/radio links the paper describes, so the
//! on-wire format must assume truncation, bit rot, and mid-stream joins.
//! Each [`NodeRecord`] travels in one self-delimiting frame:
//!
//! ```text
//! +--------+---------+----------+-----------------+---------+
//! | magic  | version | len (LE) | payload         | crc32   |
//! | 2 B    | 1 B     | 2 B      | len B           | 4 B     |
//! +--------+---------+----------+-----------------+---------+
//! ```
//!
//! The CRC-32 (IEEE) covers version, length, and payload, so a corrupted
//! length cannot silently mis-frame the stream. [`FrameDecoder`] is
//! *resynchronizing*: on any failure — garbage bytes, a bad checksum, an
//! unknown version, an undecodable payload — it scans forward to the next
//! magic sequence and keeps going, counting each maximal run of
//! undecodable bytes as one corrupt frame instead of aborting the stream.
//!
//! The payload is a fixed hand-rolled little-endian encoding of one log
//! record (22 bytes with a timestamp, 14 without) — no serde on the wire,
//! matching the byte-budgeted links it models.

use crate::event::{Event, EventKind, PacketId};
use crate::logger::{LocalLog, LogEntry};
use netsim::NodeId;

/// Frame delimiter bytes.
pub const FRAME_MAGIC: [u8; 2] = [0xEF, 0x17];

/// Current frame format version.
pub const FRAME_VERSION: u8 = 1;

/// Bytes before the payload: magic (2) + version (1) + length (2).
pub const FRAME_HEADER_LEN: usize = 5;

/// Trailing checksum bytes.
pub const FRAME_CRC_LEN: usize = 4;

/// Upper bound on a sane payload length; a larger claimed length is
/// treated as corruption rather than buffered forever.
pub const MAX_FRAME_PAYLOAD: usize = 64;

/// One node's log record in transit: the lane it belongs to plus the
/// entry itself (the same pairing `archive::ArchiveLine` uses on disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRecord {
    /// The node whose log this record came from (the stream lane).
    pub node: NodeId,
    /// The surviving log entry.
    pub entry: LogEntry,
}

impl NodeRecord {
    /// Construct a record.
    pub fn new(node: NodeId, entry: LogEntry) -> Self {
        NodeRecord { node, entry }
    }
}

/// CRC-32 (IEEE) of `bytes` — re-exported from the shared [`crate::checksum`]
/// module so frame callers keep their historical import path.
pub use crate::checksum::crc32;

/// The wire tag of an event kind plus its 16-bit auxiliary word (the peer
/// node for two-party operations, the opaque code for `Custom`, zero
/// otherwise). The tag reuses [`EventKind::code`], which is stable by
/// contract.
fn kind_to_wire(kind: EventKind) -> (u8, u16) {
    let aux = match kind {
        EventKind::Custom(v) => v,
        _ => kind.peer().map_or(0, |n| n.0),
    };
    (kind.code(), aux)
}

/// Inverse of [`kind_to_wire`]; `None` for an unknown tag.
fn kind_from_wire(tag: u8, aux: u16) -> Option<EventKind> {
    Some(match tag {
        0 => EventKind::Recv { from: NodeId(aux) },
        1 => EventKind::Overflow { from: NodeId(aux) },
        2 => EventKind::Dup { from: NodeId(aux) },
        3 => EventKind::Trans { to: NodeId(aux) },
        4 => EventKind::AckRecvd { to: NodeId(aux) },
        5 => EventKind::Origin,
        6 => EventKind::Enqueue,
        7 => EventKind::Timeout { to: NodeId(aux) },
        8 => EventKind::SerialTrans,
        9 => EventKind::BsRecv,
        10 => EventKind::Deliver,
        11 => EventKind::Custom(aux),
        _ => return None,
    })
}

/// Encode one record's payload (no framing) into `out`.
fn encode_payload(rec: &NodeRecord, out: &mut Vec<u8>) {
    let e = rec.entry.event;
    let (tag, aux) = kind_to_wire(e.kind);
    out.extend_from_slice(&rec.node.0.to_le_bytes());
    out.extend_from_slice(&e.node.0.to_le_bytes());
    out.push(tag);
    out.extend_from_slice(&aux.to_le_bytes());
    out.extend_from_slice(&e.packet.origin.0.to_le_bytes());
    out.extend_from_slice(&e.packet.seqno.to_le_bytes());
    match rec.entry.local_ts {
        Some(ts) => {
            out.push(1);
            out.extend_from_slice(&ts.to_le_bytes());
        }
        None => out.push(0),
    }
}

/// Decode one payload; `None` if it is not a well-formed v1 record.
fn decode_payload(b: &[u8]) -> Option<NodeRecord> {
    if b.len() < 14 {
        return None;
    }
    let node = NodeId(u16::from_le_bytes([b[0], b[1]]));
    let ev_node = NodeId(u16::from_le_bytes([b[2], b[3]]));
    let kind = kind_from_wire(b[4], u16::from_le_bytes([b[5], b[6]]))?;
    let origin = NodeId(u16::from_le_bytes([b[7], b[8]]));
    let seqno = u32::from_le_bytes([b[9], b[10], b[11], b[12]]);
    let local_ts = match b[13] {
        0 if b.len() == 14 => None,
        1 if b.len() == 22 => Some(u64::from_le_bytes([
            b[14], b[15], b[16], b[17], b[18], b[19], b[20], b[21],
        ])),
        _ => return None,
    };
    Some(NodeRecord {
        node,
        entry: LogEntry {
            event: Event::new(ev_node, kind, PacketId::new(origin, seqno)),
            local_ts,
        },
    })
}

/// Append one complete frame for `rec` to `out`.
pub fn encode_record(rec: &NodeRecord, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(22);
    encode_payload(rec, &mut payload);
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    out.extend_from_slice(&FRAME_MAGIC);
    let body_start = out.len();
    out.push(FRAME_VERSION);
    out.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Encode a sequence of records into one contiguous frame stream.
pub fn encode_records<'a>(records: impl IntoIterator<Item = &'a NodeRecord>) -> Vec<u8> {
    let mut out = Vec::new();
    for rec in records {
        encode_record(rec, &mut out);
    }
    out
}

/// Encode whole local logs, log by log (each node's order explicit in the
/// stream), mirroring `archive::write_logs`.
pub fn encode_logs(logs: &[LocalLog]) -> Vec<u8> {
    let mut out = Vec::new();
    for log in logs {
        for entry in &log.entries {
            encode_record(&NodeRecord::new(log.node, *entry), &mut out);
        }
    }
    out
}

/// Decoder counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Frames decoded successfully.
    pub decoded: u64,
    /// Maximal runs of undecodable bytes skipped (each run counts once,
    /// however many bytes or failed frame candidates it spans).
    pub corrupt: u64,
}

/// A resynchronizing frame decoder over an incrementally fed byte stream.
///
/// Feed arbitrary chunks with [`FrameDecoder::push`], then drain with
/// [`FrameDecoder::next_record`] until it returns `None` (meaning: more
/// bytes needed). Corruption never ends the stream — the decoder skips to
/// the next magic sequence and counts the damage in
/// [`FrameDecoder::stats`]. Chunk boundaries do not affect what is decoded
/// or how corruption is counted.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
    stats: FrameStats,
    /// True while inside an already-counted run of undecodable bytes;
    /// cleared by the next successful decode.
    skipping: bool,
}

impl FrameDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Feed a chunk of bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Counters so far.
    pub fn stats(&self) -> FrameStats {
        self.stats
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Count one corrupt run (once per maximal run).
    fn note_corrupt(&mut self) {
        if !self.skipping {
            self.stats.corrupt += 1;
            self.skipping = true;
        }
    }

    /// Drop the consumed prefix once it is large enough to matter.
    fn compact(&mut self) {
        if self.pos >= 4096 || self.pos == self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Decode the next record, or `None` if the buffer holds no complete
    /// frame (feed more bytes, or call [`FrameDecoder::finish`] at EOF).
    pub fn next_record(&mut self) -> Option<NodeRecord> {
        loop {
            // Scan to the next magic sequence.
            let window = &self.buf[self.pos..];
            match window.windows(2).position(|w| w == FRAME_MAGIC) {
                Some(0) => {}
                Some(off) => {
                    self.note_corrupt();
                    self.pos += off;
                }
                None => {
                    // No magic in sight: everything except a possible
                    // trailing magic prefix is garbage.
                    let keep = usize::from(window.last() == Some(&FRAME_MAGIC[0]));
                    if window.len() > keep {
                        self.note_corrupt();
                    }
                    self.pos = self.buf.len() - keep;
                    self.compact();
                    return None;
                }
            }
            let b = &self.buf[self.pos..];
            if b.len() < FRAME_HEADER_LEN {
                self.compact();
                return None;
            }
            let version = b[2];
            let len = usize::from(u16::from_le_bytes([b[3], b[4]]));
            if version != FRAME_VERSION || len > MAX_FRAME_PAYLOAD {
                self.note_corrupt();
                self.pos += 1;
                continue;
            }
            let total = FRAME_HEADER_LEN + len + FRAME_CRC_LEN;
            if b.len() < total {
                self.compact();
                return None;
            }
            let crc_stored = u32::from_le_bytes([
                b[total - 4],
                b[total - 3],
                b[total - 2],
                b[total - 1],
            ]);
            if crc_stored != crc32(&b[2..FRAME_HEADER_LEN + len]) {
                self.note_corrupt();
                self.pos += 1;
                continue;
            }
            match decode_payload(&b[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len]) {
                Some(rec) => {
                    self.pos += total;
                    self.stats.decoded += 1;
                    self.skipping = false;
                    self.compact();
                    return Some(rec);
                }
                None => {
                    self.note_corrupt();
                    self.pos += 1;
                }
            }
        }
    }

    /// Drain every decodable record currently buffered.
    pub fn drain(&mut self) -> Vec<NodeRecord> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record() {
            out.push(rec);
        }
        out
    }

    /// Signal end of stream: a non-empty undecodable tail counts as one
    /// final corrupt run. Returns the final counters.
    pub fn finish(&mut self) -> FrameStats {
        while self.next_record().is_some() {}
        if self.pending() > 0 {
            self.note_corrupt();
            self.pos = self.buf.len();
            self.compact();
        }
        self.stats
    }
}

/// Decode one contiguous byte slice (convenience for tests and replay).
pub fn decode_all(bytes: &[u8]) -> (Vec<NodeRecord>, FrameStats) {
    let mut dec = FrameDecoder::new();
    dec.push(bytes);
    let records = dec.drain();
    let stats = dec.finish();
    (records, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::NodeId;

    fn rec(node: u16, seq: u32, ts: Option<u64>) -> NodeRecord {
        NodeRecord::new(
            NodeId(node),
            LogEntry {
                event: Event::new(
                    NodeId(node),
                    EventKind::Trans { to: NodeId(node + 1) },
                    PacketId::new(NodeId(node), seq),
                ),
                local_ts: ts,
            },
        )
    }

    fn sample_records() -> Vec<NodeRecord> {
        vec![
            rec(1, 0, Some(1_000)),
            rec(2, 0, None),
            NodeRecord::new(
                NodeId(3),
                LogEntry {
                    event: Event::new(
                        NodeId(3),
                        EventKind::Custom(0xBEEF),
                        PacketId::new(NodeId(1), 7),
                    ),
                    local_ts: Some(u64::MAX),
                },
            ),
            NodeRecord::new(
                NodeId(4),
                LogEntry {
                    event: Event::new(
                        NodeId(4),
                        EventKind::Origin,
                        PacketId::new(NodeId(4), 42),
                    ),
                    local_ts: None,
                },
            ),
        ]
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_all_kinds() {
        let p = PacketId::new(NodeId(9), 3);
        let kinds = [
            EventKind::Recv { from: NodeId(1) },
            EventKind::Overflow { from: NodeId(2) },
            EventKind::Dup { from: NodeId(3) },
            EventKind::Trans { to: NodeId(4) },
            EventKind::AckRecvd { to: NodeId(5) },
            EventKind::Origin,
            EventKind::Enqueue,
            EventKind::Timeout { to: NodeId(6) },
            EventKind::SerialTrans,
            EventKind::BsRecv,
            EventKind::Deliver,
            EventKind::Custom(512),
        ];
        let records: Vec<NodeRecord> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                NodeRecord::new(
                    NodeId(i as u16),
                    LogEntry {
                        event: Event::new(NodeId(i as u16), kind, p),
                        local_ts: (i % 2 == 0).then_some(i as u64 * 17),
                    },
                )
            })
            .collect();
        let bytes = encode_records(&records);
        let (back, stats) = decode_all(&bytes);
        assert_eq!(back, records);
        assert_eq!(stats.decoded, records.len() as u64);
        assert_eq!(stats.corrupt, 0);
    }

    #[test]
    fn chunked_feeding_is_boundary_independent() {
        let records = sample_records();
        let bytes = encode_records(&records);
        for chunk in [1usize, 2, 3, 7, 64] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in bytes.chunks(chunk) {
                dec.push(piece);
                got.extend(dec.drain());
            }
            let stats = dec.finish();
            assert_eq!(got, records, "chunk size {chunk}");
            assert_eq!(stats.corrupt, 0, "chunk size {chunk}");
        }
    }

    #[test]
    fn corrupt_run_spanning_chunk_boundary_counts_once() {
        // Regression: a maximal corrupt run — two adjacent damaged frames
        // with garbage between them — must count as ONE run however the
        // bytes are chunked, including chunk sizes that split the run
        // across push() boundaries. The skipping flag clears only on a
        // successful decode, never at a chunk edge.
        let records = sample_records();
        let mut bytes = Vec::new();
        encode_record(&records[0], &mut bytes);
        let run_start = bytes.len();
        let mut damaged = Vec::new();
        encode_record(&records[1], &mut damaged);
        let flip = damaged.len() - 1;
        damaged[flip] ^= 0x01; // CRC byte: frame 1 of the run fails
        bytes.extend_from_slice(&damaged);
        bytes.extend_from_slice(b"mid-run garbage");
        let mut damaged = Vec::new();
        encode_record(&records[2], &mut damaged);
        damaged[FRAME_HEADER_LEN] ^= 0x80; // payload byte: frame 2 fails too
        bytes.extend_from_slice(&damaged);
        let run_end = bytes.len();
        encode_record(&records[3], &mut bytes);

        let expected = vec![records[0], records[3]];
        let (back, stats) = decode_all(&bytes);
        assert_eq!(back, expected);
        // The pinned accounting: two clean frames, one maximal run.
        assert_eq!(stats, FrameStats { decoded: 2, corrupt: 1 });

        // Every chunking — including splits inside the corrupt run —
        // lands on identical records AND identical run accounting.
        let mid_run = (run_start + run_end) / 2;
        for chunk in [1usize, 2, 3, 5, mid_run, run_start, run_end, 64] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in bytes.chunks(chunk.max(1)) {
                dec.push(piece);
                got.extend(dec.drain());
            }
            let chunked = dec.finish();
            assert_eq!(got, expected, "chunk size {chunk}");
            assert_eq!(
                chunked,
                FrameStats { decoded: 2, corrupt: 1 },
                "chunk size {chunk}: a run split across a boundary double-counted"
            );
        }
    }

    #[test]
    fn garbage_between_frames_is_counted_once_and_skipped() {
        let records = sample_records();
        let mut bytes = Vec::new();
        encode_record(&records[0], &mut bytes);
        bytes.extend_from_slice(b"not a frame at all");
        encode_record(&records[1], &mut bytes);
        let (back, stats) = decode_all(&bytes);
        assert_eq!(back, vec![records[0], records[1]]);
        assert_eq!(stats.decoded, 2);
        assert_eq!(stats.corrupt, 1, "one garbage run, one count");
    }

    #[test]
    fn bit_flip_in_payload_fails_crc_and_resyncs() {
        let records = sample_records();
        let mut bytes = encode_records(&records);
        // Flip one payload byte of the second frame.
        let frame_len = {
            let mut one = Vec::new();
            encode_record(&records[0], &mut one);
            one.len()
        };
        bytes[frame_len + FRAME_HEADER_LEN] ^= 0x40;
        let (back, stats) = decode_all(&bytes);
        assert_eq!(back.len(), records.len() - 1, "exactly the damaged frame lost");
        assert!(!back.contains(&records[1]));
        assert_eq!(stats.corrupt, 1);
    }

    #[test]
    fn truncated_tail_counts_as_corrupt_on_finish() {
        let records = sample_records();
        let mut bytes = encode_records(&records);
        bytes.truncate(bytes.len() - 3);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let got = dec.drain();
        assert_eq!(got.len(), records.len() - 1);
        let stats = dec.finish();
        assert_eq!(stats.corrupt, 1);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn unknown_version_is_skipped_not_fatal() {
        let records = sample_records();
        let mut first = Vec::new();
        encode_record(&records[0], &mut first);
        first[2] = 9; // future version
        let mut bytes = first;
        encode_record(&records[1], &mut bytes);
        let (back, stats) = decode_all(&bytes);
        assert_eq!(back, vec![records[1]]);
        assert_eq!(stats.corrupt, 1);
    }

    #[test]
    fn mid_stream_join_recovers() {
        // A decoder attached mid-stream (first frame cut in half) recovers
        // from the next frame boundary.
        let records = sample_records();
        let bytes = encode_records(&records);
        let (back, stats) = decode_all(&bytes[10..]);
        assert_eq!(back, records[1..].to_vec());
        assert_eq!(stats.corrupt, 1);
    }

    #[test]
    fn empty_and_pure_garbage_streams() {
        let (back, stats) = decode_all(&[]);
        assert!(back.is_empty());
        assert_eq!(stats, FrameStats::default());

        let (back, stats) = decode_all(b"ppppppppppppppp");
        assert!(back.is_empty());
        assert_eq!(stats.decoded, 0);
        assert_eq!(stats.corrupt, 1);
    }

    #[test]
    fn encode_logs_matches_per_record_encoding() {
        let log = LocalLog {
            node: NodeId(5),
            entries: vec![rec(5, 0, Some(3)).entry, rec(5, 1, None).entry],
        };
        let by_log = encode_logs(std::slice::from_ref(&log));
        let records: Vec<NodeRecord> = log
            .entries
            .iter()
            .map(|e| NodeRecord::new(log.node, *e))
            .collect();
        assert_eq!(by_log, encode_records(&records));
        let (back, _) = decode_all(&by_log);
        assert_eq!(back, records);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_record() -> impl Strategy<Value = NodeRecord> {
        (
            0u16..100,
            0u8..12,
            any::<u16>(),
            0u16..100,
            any::<u32>(),
            proptest::option::of(any::<u64>()),
        )
            .prop_map(|(node, tag, aux, origin, seqno, ts)| {
                let kind = kind_from_wire(tag, aux).expect("tag in range");
                NodeRecord::new(
                    NodeId(node),
                    LogEntry {
                        event: Event::new(
                            NodeId(node),
                            kind,
                            PacketId::new(NodeId(origin), seqno),
                        ),
                        local_ts: ts,
                    },
                )
            })
    }

    proptest! {
        /// Encode→decode is the identity for arbitrary record sequences,
        /// under arbitrary chunking.
        #[test]
        fn roundtrip_is_lossless(
            records in proptest::collection::vec(arb_record(), 0..40),
            chunk in 1usize..97,
        ) {
            let bytes = encode_records(&records);
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in bytes.chunks(chunk.max(1)) {
                dec.push(piece);
                got.extend(dec.drain());
            }
            let stats = dec.finish();
            prop_assert_eq!(got, records);
            prop_assert_eq!(stats.corrupt, 0);
        }

        /// Arbitrary injected garbage never panics the decoder and never
        /// corrupts the frames around it.
        #[test]
        fn garbage_injection_is_survivable(
            records in proptest::collection::vec(arb_record(), 1..10),
            garbage in proptest::collection::vec(any::<u8>(), 1..64),
            at in 0usize..10,
        ) {
            let at = at.min(records.len());
            let mut bytes = encode_records(&records[..at]);
            bytes.extend_from_slice(&garbage);
            bytes.extend_from_slice(&encode_records(&records[at..]));
            let mut dec = FrameDecoder::new();
            dec.push(&bytes);
            let got = dec.drain();
            let _ = dec.finish();
            // Every frame before the garbage survives; frames after it
            // survive unless the garbage happens to embed a valid-looking
            // frame prefix that swallows the next real frame.
            prop_assert!(got.len() >= at);
            for (g, r) in got.iter().zip(records[..at].iter()) {
                prop_assert_eq!(g, r);
            }
        }
    }
}
