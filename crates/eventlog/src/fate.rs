//! Ground truth: what actually happened to every packet.
//!
//! The real CitySee deployment could never know this; the simulator records
//! it so the reproduction can *score* REFILL's reconstruction (precision and
//! recall of inferred events, cause-classification accuracy) in addition to
//! regenerating the paper's figures.

use crate::event::{Event, PacketId};
use netsim::{NodeId, SimTime};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a packet was lost — the cause taxonomy of Section V-C / Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum LossCause {
    /// The packet was received (network layer logged it / would have logged
    /// it) at some node and then lost inside that node or on the sink's
    /// serial cable.
    ReceivedLoss,
    /// The hardware ACK reached the sender but the packet never made it up
    /// the receiver's stack (task-post failure, full MCU, …).
    AckedLoss,
    /// Retransmissions were exhausted without an ACK; the link dropped every
    /// attempt.
    TimeoutLoss,
    /// The packet was discarded as a duplicate (routing loop / lost-ACK
    /// retransmission collision).
    DuplicateLoss,
    /// The forwarding queue was full.
    OverflowLoss,
    /// The base-station server was down when the packet arrived over the
    /// serial link.
    ServerOutage,
}

impl LossCause {
    /// All causes, in the order used by the figures.
    pub const ALL: [LossCause; 6] = [
        LossCause::ReceivedLoss,
        LossCause::AckedLoss,
        LossCause::TimeoutLoss,
        LossCause::DuplicateLoss,
        LossCause::OverflowLoss,
        LossCause::ServerOutage,
    ];

    /// Short label for tables and plots.
    pub fn label(&self) -> &'static str {
        match self {
            LossCause::ReceivedLoss => "received",
            LossCause::AckedLoss => "acked",
            LossCause::TimeoutLoss => "timeout",
            LossCause::DuplicateLoss => "duplicated",
            LossCause::OverflowLoss => "overflow",
            LossCause::ServerOutage => "server outage",
        }
    }
}

impl fmt::Display for LossCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The final fate of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketFate {
    /// Received by the base station.
    Delivered {
        /// When the base station logged it.
        at: SimTime,
    },
    /// Lost somewhere on the way.
    Lost {
        /// The node where the packet ceased to exist (for `TimeoutLoss` this
        /// is the sender that gave up; for `ServerOutage` it is the sink).
        at_node: NodeId,
        /// Why.
        cause: LossCause,
        /// When.
        at: SimTime,
    },
}

impl PacketFate {
    /// True if the packet reached the base station.
    pub fn delivered(&self) -> bool {
        matches!(self, PacketFate::Delivered { .. })
    }

    /// The loss cause, if lost.
    pub fn cause(&self) -> Option<LossCause> {
        match self {
            PacketFate::Lost { cause, .. } => Some(*cause),
            PacketFate::Delivered { .. } => None,
        }
    }

    /// The loss position, if lost.
    pub fn loss_node(&self) -> Option<NodeId> {
        match self {
            PacketFate::Lost { at_node, .. } => Some(*at_node),
            PacketFate::Delivered { .. } => None,
        }
    }
}

/// One event as it truly happened, with its true occurrence time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruthEvent {
    /// True occurrence time.
    pub at: SimTime,
    /// The event.
    pub event: Event,
}

/// Complete ground truth of a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Every loggable event in true occurrence order (this includes events
    /// that later fail to be written to the local log).
    pub events: Vec<TruthEvent>,
    /// The fate of every packet that was generated.
    pub fates: FxHashMap<PacketId, PacketFate>,
    /// The true multi-hop path (node visit sequence) of every packet,
    /// starting at its origin.
    pub paths: FxHashMap<PacketId, Vec<NodeId>>,
}

impl GroundTruth {
    /// Record an event occurrence.
    pub fn record(&mut self, at: SimTime, event: Event) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.at <= at),
            "ground-truth events must be recorded in time order"
        );
        self.events.push(TruthEvent { at, event });
    }

    /// Record a packet's fate (later records override earlier ones, so a
    /// packet that loops and is finally delivered ends up `Delivered`).
    pub fn set_fate(&mut self, packet: PacketId, fate: PacketFate) {
        self.fates.insert(packet, fate);
    }

    /// Append a node visit to a packet's true path.
    pub fn visit(&mut self, packet: PacketId, node: NodeId) {
        self.paths.entry(packet).or_default().push(node);
    }

    /// Number of generated packets.
    pub fn packet_count(&self) -> usize {
        self.fates.len()
    }

    /// Number of lost packets.
    pub fn lost_count(&self) -> usize {
        self.fates.values().filter(|f| !f.delivered()).count()
    }

    /// Delivery ratio over all packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.fates.is_empty() {
            return 1.0;
        }
        1.0 - self.lost_count() as f64 / self.fates.len() as f64
    }

    /// Count of losses per cause.
    pub fn losses_by_cause(&self) -> FxHashMap<LossCause, usize> {
        let mut out = FxHashMap::default();
        for fate in self.fates.values() {
            if let Some(cause) = fate.cause() {
                *out.entry(cause).or_insert(0) += 1;
            }
        }
        out
    }

    /// The true events of one packet, in occurrence order.
    pub fn events_of(&self, packet: PacketId) -> Vec<TruthEvent> {
        self.events
            .iter()
            .filter(|te| te.event.packet == packet)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn pid(n: u16, s: u32) -> PacketId {
        PacketId::new(NodeId(n), s)
    }

    #[test]
    fn fate_accessors() {
        let d = PacketFate::Delivered {
            at: SimTime::from_secs(1),
        };
        assert!(d.delivered());
        assert_eq!(d.cause(), None);
        let l = PacketFate::Lost {
            at_node: NodeId(3),
            cause: LossCause::TimeoutLoss,
            at: SimTime::from_secs(2),
        };
        assert!(!l.delivered());
        assert_eq!(l.cause(), Some(LossCause::TimeoutLoss));
        assert_eq!(l.loss_node(), Some(NodeId(3)));
    }

    #[test]
    fn delivery_ratio_and_counts() {
        let mut gt = GroundTruth::default();
        gt.set_fate(pid(1, 0), PacketFate::Delivered { at: SimTime::ZERO });
        gt.set_fate(
            pid(1, 1),
            PacketFate::Lost {
                at_node: NodeId(2),
                cause: LossCause::OverflowLoss,
                at: SimTime::ZERO,
            },
        );
        gt.set_fate(
            pid(2, 0),
            PacketFate::Lost {
                at_node: NodeId(0),
                cause: LossCause::ReceivedLoss,
                at: SimTime::ZERO,
            },
        );
        assert_eq!(gt.packet_count(), 3);
        assert_eq!(gt.lost_count(), 2);
        assert!((gt.delivery_ratio() - 1.0 / 3.0).abs() < 1e-12);
        let by = gt.losses_by_cause();
        assert_eq!(by.get(&LossCause::OverflowLoss), Some(&1));
        assert_eq!(by.get(&LossCause::ReceivedLoss), Some(&1));
        assert_eq!(by.get(&LossCause::TimeoutLoss), None);
    }

    #[test]
    fn later_fate_overrides() {
        let mut gt = GroundTruth::default();
        gt.set_fate(
            pid(1, 0),
            PacketFate::Lost {
                at_node: NodeId(2),
                cause: LossCause::DuplicateLoss,
                at: SimTime::ZERO,
            },
        );
        gt.set_fate(pid(1, 0), PacketFate::Delivered { at: SimTime::ZERO });
        assert!(gt.fates[&pid(1, 0)].delivered());
    }

    #[test]
    fn events_of_filters_by_packet() {
        let mut gt = GroundTruth::default();
        let p = pid(1, 0);
        let q = pid(1, 1);
        gt.record(SimTime::from_secs(1), Event::new(NodeId(1), EventKind::Origin, p));
        gt.record(SimTime::from_secs(2), Event::new(NodeId(1), EventKind::Origin, q));
        gt.record(
            SimTime::from_secs(3),
            Event::new(NodeId(1), EventKind::Trans { to: NodeId(0) }, p),
        );
        let evs = gt.events_of(p);
        assert_eq!(evs.len(), 2);
        assert!(evs.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn empty_truth_has_full_delivery() {
        let gt = GroundTruth::default();
        assert_eq!(gt.delivery_ratio(), 1.0);
    }

    #[test]
    fn cause_labels_are_stable() {
        assert_eq!(LossCause::ReceivedLoss.label(), "received");
        assert_eq!(LossCause::ServerOutage.to_string(), "server outage");
        assert_eq!(LossCause::ALL.len(), 6);
    }
}
