//! Data extraction for every figure of the paper's evaluation.
//!
//! Each `figN` function turns a campaign + analysis into exactly the data
//! series the corresponding figure plots; `render_*` helpers produce CSV
//! (for external plotting) and compact ASCII summaries (for the bench
//! binaries' stdout). Shape expectations are recorded in EXPERIMENTS.md.

use crate::analysis::{Analysis, PacketRecord};
use crate::run::Campaign;
use crate::scenario::Scenario;
use eventlog::{LossCause, PacketId};
use netsim::{NodeId, SimTime};
use refill::DiagnosedCause;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The cause order used across all figures.
pub const CAUSE_ORDER: [DiagnosedCause; 7] = [
    DiagnosedCause::Known(LossCause::AckedLoss),
    DiagnosedCause::Known(LossCause::ReceivedLoss),
    DiagnosedCause::Known(LossCause::ServerOutage),
    DiagnosedCause::Known(LossCause::OverflowLoss),
    DiagnosedCause::Known(LossCause::TimeoutLoss),
    DiagnosedCause::Known(LossCause::DuplicateLoss),
    DiagnosedCause::Unknown,
];

/// One scatter point: a lost packet at a time, attributed to a node and a
/// cause. Figure 4 uses `node = origin` (the source view); Figure 5 uses
/// `node = loss position` (REFILL's view).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LossPoint {
    /// The packet.
    pub packet: PacketId,
    /// Time (seconds of campaign time; estimated, as in the paper).
    pub time_s: f64,
    /// The node this view attributes the loss to.
    pub node: NodeId,
    /// The diagnosed cause.
    pub cause: DiagnosedCause,
}

fn record_time(r: &PacketRecord) -> SimTime {
    match (r.est_time, &r.fate) {
        (Some(t), _) => t,
        (None, eventlog::PacketFate::Lost { at, .. }) => *at,
        (None, eventlog::PacketFate::Delivered { at }) => *at,
    }
}

fn record_cause(r: &PacketRecord) -> DiagnosedCause {
    r.diagnosis.cause.unwrap_or(DiagnosedCause::Unknown)
}

/// Figure 4: temporal distribution of lost packets in the *source* view —
/// `(time, origin node, cause)` per lost packet.
pub fn fig4_source_view(analysis: &Analysis) -> Vec<LossPoint> {
    fig4_from_records(&analysis.records)
}

/// [`fig4_source_view`] over bare records — the durable store's query
/// engine rebuilds `PacketRecord`s from segment sidecars and reuses this
/// path so its CSVs stay byte-identical to the in-memory analysis.
pub fn fig4_from_records(records: &[PacketRecord]) -> Vec<LossPoint> {
    records
        .iter()
        .filter(|r| !r.fate.delivered())
        .map(|r| LossPoint {
            packet: r.packet,
            time_s: record_time(r).as_secs_f64(),
            node: r.packet.origin,
            cause: record_cause(r),
        })
        .collect()
}

/// Figure 5: the same losses attributed to their *loss positions* by
/// REFILL.
pub fn fig5_loss_positions(analysis: &Analysis) -> Vec<LossPoint> {
    fig5_from_records(&analysis.records)
}

/// [`fig5_loss_positions`] over bare records (see [`fig4_from_records`]).
pub fn fig5_from_records(records: &[PacketRecord]) -> Vec<LossPoint> {
    records
        .iter()
        .filter(|r| !r.fate.delivered())
        .filter_map(|r| {
            r.diagnosis.loss_node.map(|node| LossPoint {
                packet: r.packet,
                time_s: record_time(r).as_secs_f64(),
                node,
                cause: record_cause(r),
            })
        })
        .collect()
}

/// Figure 6: per-day cause composition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DailyCauses {
    /// 0-indexed day.
    pub day: u32,
    /// Loss counts per cause (ordered as [`CAUSE_ORDER`]).
    pub counts: Vec<usize>,
    /// Total losses that day.
    pub total: usize,
    /// Packets generated that day (for loss-rate context).
    pub generated: usize,
}

/// Build the Figure 6 series.
pub fn fig6_daily_causes(
    campaign: &Campaign,
    analysis: &Analysis,
) -> Vec<DailyCauses> {
    let scenario = &campaign.scenario;
    let mut days: Vec<DailyCauses> = (0..scenario.days)
        .map(|day| DailyCauses {
            day,
            counts: vec![0; CAUSE_ORDER.len()],
            total: 0,
            generated: 0,
        })
        .collect();
    for r in &analysis.records {
        let day = scenario.day_of(record_time(r)) as usize;
        days[day].generated += 1;
        if r.fate.delivered() {
            continue;
        }
        let cause = record_cause(r);
        let idx = CAUSE_ORDER
            .iter()
            .position(|c| *c == cause)
            .unwrap_or(CAUSE_ORDER.len() - 1);
        days[day].counts[idx] += 1;
        days[day].total += 1;
    }
    days
}

/// Figure 8: spatial distribution of received losses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpatialPoint {
    /// The node.
    pub node: NodeId,
    /// Position (metres).
    pub x: f64,
    /// Position (metres).
    pub y: f64,
    /// Received losses positioned here.
    pub received_losses: usize,
    /// Whether this is the sink (the triangle in the paper's figure).
    pub is_sink: bool,
}

/// Build the Figure 8 series.
pub fn fig8_spatial_received(campaign: &Campaign, analysis: &Analysis) -> Vec<SpatialPoint> {
    fig8_from_records(&analysis.records, &campaign.topology)
}

/// [`fig8_spatial_received`] over bare records plus a topology (which the
/// query CLI rebuilds deterministically from the stored scenario).
pub fn fig8_from_records(
    records: &[PacketRecord],
    topology: &netsim::Topology,
) -> Vec<SpatialPoint> {
    let mut counts: FxHashMap<NodeId, usize> = FxHashMap::default();
    for r in records.iter().filter(|r| !r.fate.delivered()) {
        if r.diagnosis.cause == Some(DiagnosedCause::Known(LossCause::ReceivedLoss)) {
            if let Some(node) = r.diagnosis.loss_node {
                *counts.entry(node).or_insert(0) += 1;
            }
        }
    }
    topology
        .nodes()
        .map(|node| {
            let p = topology.position(node);
            SpatialPoint {
                node,
                x: p.x,
                y: p.y,
                received_losses: counts.get(&node).copied().unwrap_or(0),
                is_sink: node == topology.sink(),
            }
        })
        .collect()
}

/// Figure 9 / Section V-C: the overall cause breakdown with sink splits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Breakdown {
    /// Total lost packets.
    pub lost_total: usize,
    /// Delivered packets.
    pub delivered_total: usize,
    /// Percent of losses per cause, ordered as [`CAUSE_ORDER`].
    pub percent: Vec<f64>,
    /// Received losses at the sink, % of all losses (paper: 20.0 %).
    pub received_sink_pct: f64,
    /// Received losses elsewhere, % (paper: 12.2 %).
    pub received_other_pct: f64,
    /// Acked losses at the sink, % (paper: 38.0 %).
    pub acked_sink_pct: f64,
    /// Acked losses elsewhere, % (paper: 0.6 %).
    pub acked_other_pct: f64,
}

/// Build the Figure 9 breakdown from REFILL's diagnoses.
pub fn fig9_breakdown(campaign: &Campaign, analysis: &Analysis) -> Fig9Breakdown {
    let sink = campaign.topology.sink();
    let mut counts = vec![0usize; CAUSE_ORDER.len()];
    let mut lost_total = 0usize;
    let mut delivered_total = 0usize;
    let mut received_sink = 0usize;
    let mut received_other = 0usize;
    let mut acked_sink = 0usize;
    let mut acked_other = 0usize;
    for r in &analysis.records {
        if r.fate.delivered() {
            delivered_total += 1;
            continue;
        }
        lost_total += 1;
        let cause = record_cause(r);
        let idx = CAUSE_ORDER
            .iter()
            .position(|c| *c == cause)
            .unwrap_or(CAUSE_ORDER.len() - 1);
        counts[idx] += 1;
        let at_sink = r.diagnosis.loss_node == Some(sink);
        match cause {
            DiagnosedCause::Known(LossCause::ReceivedLoss) => {
                if at_sink {
                    received_sink += 1;
                } else {
                    received_other += 1;
                }
            }
            DiagnosedCause::Known(LossCause::AckedLoss) => {
                if at_sink {
                    acked_sink += 1;
                } else {
                    acked_other += 1;
                }
            }
            _ => {}
        }
    }
    let pct = |c: usize| {
        if lost_total == 0 {
            0.0
        } else {
            100.0 * c as f64 / lost_total as f64
        }
    };
    Fig9Breakdown {
        lost_total,
        delivered_total,
        percent: counts.iter().map(|&c| pct(c)).collect(),
        received_sink_pct: pct(received_sink),
        received_other_pct: pct(received_other),
        acked_sink_pct: pct(acked_sink),
        acked_other_pct: pct(acked_other),
    }
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

/// CSV for scatter figures (4 and 5).
pub fn render_loss_points_csv(points: &[LossPoint]) -> String {
    let mut out = String::from("packet,time_s,node,cause\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{:.1},{},{}",
            p.packet,
            p.time_s,
            p.node.0,
            p.cause.label()
        );
    }
    out
}

/// CSV for Figure 6.
pub fn render_fig6_csv(days: &[DailyCauses]) -> String {
    let mut out = String::from("day,generated,lost");
    for c in CAUSE_ORDER {
        let _ = write!(out, ",{}", c.label().replace(' ', "_"));
    }
    out.push('\n');
    for d in days {
        let _ = write!(out, "{},{},{}", d.day, d.generated, d.total);
        for &c in &d.counts {
            let _ = write!(out, ",{c}");
        }
        out.push('\n');
    }
    out
}

/// CSV for Figure 8.
pub fn render_fig8_csv(points: &[SpatialPoint]) -> String {
    let mut out = String::from("node,x,y,received_losses,is_sink\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{:.1},{:.1},{},{}",
            p.node.0, p.x, p.y, p.received_losses, p.is_sink
        );
    }
    out
}

/// ASCII bar summary for Figure 9 (also used by the fig6 per-day rows).
pub fn render_fig9_ascii(b: &Fig9Breakdown) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "losses: {} / {} packets ({:.1}% loss rate)",
        b.lost_total,
        b.lost_total + b.delivered_total,
        100.0 * b.lost_total as f64 / (b.lost_total + b.delivered_total).max(1) as f64
    );
    for (i, cause) in CAUSE_ORDER.iter().enumerate() {
        let pct = b.percent[i];
        let bar = "#".repeat((pct / 2.0).round() as usize);
        let _ = writeln!(out, "{:>14}: {:5.1}% {}", cause.label(), pct, bar);
    }
    let _ = writeln!(
        out,
        "      received: {:.1}% sink + {:.1}% other | acked: {:.1}% sink + {:.1}% other",
        b.received_sink_pct, b.received_other_pct, b.acked_sink_pct, b.acked_other_pct
    );
    out
}

/// ASCII day-by-day table for Figure 6.
pub fn render_fig6_ascii(days: &[DailyCauses], scenario: &Scenario) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "day | lost/gen | {}",
        CAUSE_ORDER
            .iter()
            .map(|c| format!("{:>9}", c.label().split(' ').next().unwrap_or("")))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for d in days {
        let mut row = format!("{:>3} | {:>4}/{:<5}|", d.day + 1, d.total, d.generated);
        for &c in &d.counts {
            let _ = write!(row, " {c:>9}");
        }
        let mut marks = String::new();
        if scenario.snow_days.contains(&d.day) {
            marks.push_str("  <- snow");
        }
        if scenario.sink_fix_day == Some(d.day) {
            marks.push_str("  <- sink fixed");
        }
        let _ = writeln!(out, "{row}{marks}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::run::run_scenario;
    use std::sync::OnceLock;

    fn fixtures() -> &'static (Campaign, Analysis) {
        static CELL: OnceLock<(Campaign, Analysis)> = OnceLock::new();
        CELL.get_or_init(|| {
            let c = run_scenario(&Scenario::small());
            let a = analyze(&c);
            (c, a)
        })
    }

    #[test]
    fn fig4_points_cover_losses_by_origin() {
        let (_, a) = fixtures();
        let pts = fig4_source_view(a);
        assert!(!pts.is_empty());
        for p in &pts {
            assert_eq!(p.node, p.packet.origin, "fig4 attributes to the origin");
        }
    }

    #[test]
    fn fig5_positions_are_concentrated_vs_fig4_origins() {
        // The paper's headline contrast: sources spread out, positions
        // concentrate on few nodes (dominated by the sink).
        let (_, a) = fixtures();
        let fig4 = fig4_source_view(a);
        let fig5 = fig5_loss_positions(a);
        let distinct = |pts: &[LossPoint]| {
            let mut nodes: Vec<u16> = pts.iter().map(|p| p.node.0).collect();
            nodes.sort_unstable();
            nodes.dedup();
            nodes.len()
        };
        assert!(
            distinct(&fig5) < distinct(&fig4),
            "positions ({}) should concentrate vs origins ({})",
            distinct(&fig5),
            distinct(&fig4)
        );
    }

    #[test]
    fn fig6_days_sum_to_total_losses() {
        let (c, a) = fixtures();
        let days = fig6_daily_causes(c, a);
        assert_eq!(days.len() as u32, c.scenario.days);
        let total: usize = days.iter().map(|d| d.total).sum();
        assert_eq!(total, a.lost_records().count());
        let generated: usize = days.iter().map(|d| d.generated).sum();
        assert_eq!(generated, a.records.len());
    }

    #[test]
    fn fig6_losses_drop_after_sink_fix() {
        let (c, a) = fixtures();
        let days = fig6_daily_causes(c, a);
        let fix = c.scenario.sink_fix_day.unwrap() as usize;
        let before: f64 = days[..fix]
            .iter()
            .map(|d| d.total as f64 / d.generated.max(1) as f64)
            .sum::<f64>()
            / fix as f64;
        let after: f64 = days[fix..]
            .iter()
            .map(|d| d.total as f64 / d.generated.max(1) as f64)
            .sum::<f64>()
            / (days.len() - fix) as f64;
        assert!(
            after < before,
            "loss rate should drop after the sink fix: before {before:.3}, after {after:.3}"
        );
    }

    #[test]
    fn fig8_sink_dominates_received_losses() {
        let (c, a) = fixtures();
        let pts = fig8_spatial_received(c, a);
        assert_eq!(pts.len(), c.scenario.nodes);
        let sink_pt = pts.iter().find(|p| p.is_sink).unwrap();
        let max_other = pts
            .iter()
            .filter(|p| !p.is_sink)
            .map(|p| p.received_losses)
            .max()
            .unwrap_or(0);
        assert!(
            sink_pt.received_losses >= max_other,
            "sink ({}) should have at least as many received losses as any other node ({max_other})",
            sink_pt.received_losses
        );
    }

    #[test]
    fn fig9_percentages_sum_to_100() {
        let (c, a) = fixtures();
        let b = fig9_breakdown(c, a);
        assert!(b.lost_total > 0);
        let sum: f64 = b.percent.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6, "percentages sum to {sum}");
        // Splits are consistent with their parents.
        let recv_idx = CAUSE_ORDER
            .iter()
            .position(|c| *c == DiagnosedCause::Known(LossCause::ReceivedLoss))
            .unwrap();
        assert!(
            (b.received_sink_pct + b.received_other_pct - b.percent[recv_idx]).abs() < 1e-6
        );
    }

    #[test]
    fn fig9_shape_matches_paper_ordering() {
        // Shape criterion from DESIGN.md: acked + received dominate, and
        // the sink accounts for most of both.
        let (c, a) = fixtures();
        let b = fig9_breakdown(c, a);
        let idx = |cause: DiagnosedCause| CAUSE_ORDER.iter().position(|c| *c == cause).unwrap();
        let acked = b.percent[idx(DiagnosedCause::Known(LossCause::AckedLoss))];
        let received = b.percent[idx(DiagnosedCause::Known(LossCause::ReceivedLoss))];
        let dup = b.percent[idx(DiagnosedCause::Known(LossCause::DuplicateLoss))];
        let overflow = b.percent[idx(DiagnosedCause::Known(LossCause::OverflowLoss))];
        assert!(acked + received > 40.0, "acked+received = {:.1}", acked + received);
        assert!(acked > dup && acked > overflow);
        assert!(b.acked_sink_pct > b.acked_other_pct);
    }

    #[test]
    fn renderers_produce_parseable_output() {
        let (c, a) = fixtures();
        let csv4 = render_loss_points_csv(&fig4_source_view(a));
        assert!(csv4.starts_with("packet,time_s,node,cause\n"));
        assert!(csv4.lines().count() > 1);
        let days = fig6_daily_causes(c, a);
        let csv6 = render_fig6_csv(&days);
        assert_eq!(csv6.lines().count(), days.len() + 1);
        let csv8 = render_fig8_csv(&fig8_spatial_received(c, a));
        assert_eq!(csv8.lines().count(), c.scenario.nodes + 1);
        let ascii9 = render_fig9_ascii(&fig9_breakdown(c, a));
        assert!(ascii9.contains('%'));
        let ascii6 = render_fig6_ascii(&days, &c.scenario);
        assert!(ascii6.contains("sink fixed"));
    }
}
