//! Campaign execution: simulate, collect lossily, merge.

use crate::scenario::Scenario;
use eventlog::collect::LossyCollector;
use eventlog::event::BASE_STATION;
use eventlog::frame::NodeRecord;
use eventlog::logger::LocalLog;
use eventlog::merge::{merge_logs, MergedLog};
use netsim::{RngFactory, Topology};
use protocols::sim::{SimOutput, Simulator};

/// A completed campaign: the simulation output plus the (lossily) collected
/// and merged logs the analysis side actually gets to see.
pub struct Campaign {
    /// The scenario that produced this campaign.
    pub scenario: Scenario,
    /// The deployment.
    pub topology: Topology,
    /// Simulation output (includes ground truth — the analysis must not
    /// peek except for scoring).
    pub sim: SimOutput,
    /// Logs after in-network collection loss (base station log last,
    /// always intact — it lives on the server).
    pub collected: Vec<LocalLog>,
    /// The merged event stream fed to REFILL.
    pub merged: MergedLog,
}

impl Campaign {
    /// The collected logs as one upload-arrival-ordered record stream —
    /// what the base station's serial port would see if every node
    /// uploaded its log live. See [`upload_order`].
    pub fn upload_records(&self) -> Vec<NodeRecord> {
        upload_order(&self.collected)
    }
}

/// Interleave per-node logs into a plausible upload arrival order.
///
/// Each record's arrival key is its node's *running-max* local timestamp
/// (monotone per node even when individual readings regress, and zero for
/// untimestamped prefixes), and the sort is stable — so every node's own
/// recording order is preserved exactly, which is the only ordering
/// guarantee the reconstruction contract needs. Cross-node interleaving
/// follows the nodes' skewed clocks, which is realistic, not meaningful.
pub fn upload_order(logs: &[LocalLog]) -> Vec<NodeRecord> {
    let mut keyed: Vec<(u64, NodeRecord)> = Vec::new();
    for log in logs {
        let mut running = 0u64;
        for entry in &log.entries {
            if let Some(ts) = entry.local_ts {
                running = running.max(ts);
            }
            keyed.push((running, NodeRecord::new(log.node, *entry)));
        }
    }
    keyed.sort_by_key(|(at, _)| *at);
    keyed.into_iter().map(|(_, rec)| rec).collect()
}

/// Run a scenario end to end.
pub fn run_scenario(scenario: &Scenario) -> Campaign {
    let (topology, table, faults, config) = scenario.build();
    let sim = Simulator::new(topology.clone(), table, faults, config).run();

    // Collection: node logs suffer loss; the base station's log is local to
    // the server and survives intact.
    let collector = LossyCollector::new(scenario.collection);
    let factory = RngFactory::new(scenario.seed ^ 0xC0111EC7);
    let mut node_logs: Vec<LocalLog> = Vec::new();
    let mut bs_log = None;
    for log in &sim.logs {
        if log.node == BASE_STATION {
            bs_log = Some(log.clone());
        } else {
            node_logs.push(log.clone());
        }
    }
    let mut collected = collector.collect_all(&node_logs, &factory);
    if let Some(bs) = bs_log {
        collected.push(bs);
    }
    let merged = merge_logs(&collected);

    Campaign {
        scenario: scenario.clone(),
        topology,
        sim,
        collected,
        merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventlog::EventKind;

    fn campaign() -> Campaign {
        run_scenario(&Scenario::small())
    }

    #[test]
    fn campaign_produces_traffic_and_logs() {
        let c = campaign();
        assert!(c.sim.counters.get("generated") > 100);
        assert!(!c.merged.is_empty());
        // The base station log survived collection.
        assert!(c
            .collected
            .iter()
            .any(|l| l.node == BASE_STATION && !l.is_empty()));
    }

    #[test]
    fn collection_loses_some_events() {
        let c = campaign();
        let truth_loggable = c.sim.truth.events.len();
        let collected: usize = c.collected.iter().map(|l| l.len()).sum();
        assert!(
            collected < truth_loggable,
            "collection should be lossy: {collected} vs {truth_loggable}"
        );
        assert!(
            collected > truth_loggable / 4,
            "but most events should survive: {collected} vs {truth_loggable}"
        );
    }

    #[test]
    fn losses_have_multiple_causes() {
        let c = campaign();
        let by_cause = c.sim.truth.losses_by_cause();
        assert!(
            by_cause.len() >= 2,
            "scenario should produce a mix of causes: {by_cause:?}"
        );
    }

    #[test]
    fn most_packets_delivered() {
        let c = campaign();
        let ratio = c.sim.truth.delivery_ratio();
        assert!(
            ratio > 0.6 && ratio < 1.0,
            "expected substantial-but-imperfect delivery, got {ratio}"
        );
    }

    #[test]
    fn merged_log_covers_most_packets() {
        let c = campaign();
        let seen = c.merged.packet_ids().len();
        let generated = c.sim.truth.packet_count();
        assert!(
            seen * 10 >= generated * 8,
            "merged log should mention most packets: {seen}/{generated}"
        );
    }

    #[test]
    fn bs_entries_match_delivered_count() {
        let c = campaign();
        let bs_events = c
            .merged
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::BsRecv))
            .count();
        assert_eq!(bs_events as u64, c.sim.counters.get("delivered"));
    }

    #[test]
    fn upload_records_preserve_per_node_order() {
        let c = campaign();
        let records = c.upload_records();
        assert_eq!(
            records.len(),
            c.collected.iter().map(|l| l.len()).sum::<usize>(),
            "every collected entry appears exactly once"
        );
        for log in &c.collected {
            let lane: Vec<_> = records
                .iter()
                .filter(|r| r.node == log.node)
                .map(|r| r.entry)
                .collect();
            assert_eq!(lane, log.entries, "node {} order mangled", log.node);
        }
    }

    #[test]
    fn upload_records_interleave_nodes() {
        // The whole point: the stream is NOT one log after another.
        let c = campaign();
        let records = c.upload_records();
        let switches = records
            .windows(2)
            .filter(|w| w[0].node != w[1].node)
            .count();
        assert!(
            switches + 1 > c.collected.len(),
            "expected genuine interleaving, got {switches} lane switches"
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = campaign();
        let b = campaign();
        assert_eq!(a.merged.events, b.merged.events);
        assert_eq!(a.sim.counters, b.sim.counters);
    }
}
