//! Scenario definition and construction of simulator inputs.
//!
//! Time is scaled: a simulated "day" is `day_secs` of simulation time (the
//! paper's network sent a packet every few minutes for 30 wall-clock days;
//! we keep the *structure* — packets per node per day, per-day fault
//! schedule — while compressing wall time so a month fits in seconds of
//! compute). All fault intensities are per-packet probabilities, so the
//! compression does not change loss composition.

use eventlog::collect::CollectionConfig;
use eventlog::logger::LoggerConfig;
use netsim::link::{LinkModel, LinkModelConfig, LinkQualityTable};
use netsim::topology::Layout;
use netsim::{Position, RngFactory, SimDuration, SimTime, Topology};
use protocols::schedule::{FaultSchedule, InterferenceBurst, Schedule};
use protocols::SimConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A CitySee-like campaign description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// Number of sensor nodes (the paper: 1,200).
    pub nodes: usize,
    /// Deployment square side in metres.
    pub side_m: f64,
    /// Number of simulated days.
    pub days: u32,
    /// Seconds of simulation time per day (time compression).
    pub day_secs: u64,
    /// Application packets per node per day.
    pub packets_per_node_per_day: u32,
    /// Master seed.
    pub seed: u64,
    /// Day the sink wiring is replaced (`None` = never), 0-indexed: the
    /// paper's "after the 23th day".
    pub sink_fix_day: Option<u32>,
    /// Days with snow (link-quality drop), 0-indexed (paper: days 9–10,
    /// 1-indexed, i.e. indices 8 and 9).
    pub snow_days: Vec<u32>,
    /// Snow link-quality multiplier.
    pub snow_factor: f64,
    /// Number of base-station outages across the campaign (randomly placed
    /// unless [`Scenario::outage_days`] pins them).
    pub outage_count: u32,
    /// Explicit outage days (0-indexed), overriding random placement.
    pub outage_days: Option<Vec<u32>>,
    /// Outage length as a fraction of a day.
    pub outage_day_frac: f64,
    /// Number of localized interference bursts.
    pub burst_count: u32,
    /// Sink pre-log (acked-loss) drop probability before the fix.
    pub sink_prelog_before: f64,
    /// Sink post-recv drop probability before the fix.
    pub sink_predrop_before: f64,
    /// Serial loss probability before the fix.
    pub serial_loss_before: f64,
    /// The same three probabilities after the fix.
    pub sink_prelog_after: f64,
    /// Post-recv drop after the fix.
    pub sink_predrop_after: f64,
    /// Serial loss after the fix.
    pub serial_loss_after: f64,
    /// Ordinary-node stack-drop probability (acked losses off-sink).
    pub p_prelog_drop: f64,
    /// Ordinary-node internal-drop probability (received losses off-sink).
    pub p_internal_drop: f64,
    /// Log-collection loss parameters.
    pub collection: CollectionConfig,
    /// Local logger behaviour.
    pub logger: LoggerConfig,
}

impl Scenario {
    /// The paper-scale campaign: 1,200 nodes, 30 days.
    pub fn paper() -> Self {
        Scenario {
            name: "citysee-paper".into(),
            nodes: 1200,
            side_m: 1560.0,
            ..Scenario::standard()
        }
    }

    /// The default evaluation scale: 300 nodes, 30 days — same structure as
    /// the paper run at a fraction of the compute.
    pub fn standard() -> Self {
        Scenario {
            name: "citysee-standard".into(),
            nodes: 300,
            side_m: 780.0,
            days: 30,
            day_secs: 240,
            packets_per_node_per_day: 8,
            seed: 2015,
            sink_fix_day: Some(23),
            snow_days: vec![8, 9],
            snow_factor: 0.45,
            outage_count: 5,
            outage_days: None,
            outage_day_frac: 0.22,
            burst_count: 6,
            sink_prelog_before: 0.075,
            sink_predrop_before: 0.016,
            serial_loss_before: 0.028,
            sink_prelog_after: 0.001,
            sink_predrop_after: 0.0003,
            serial_loss_after: 0.0005,
            p_prelog_drop: 0.0001,
            p_internal_drop: 0.0012,
            collection: CollectionConfig::default(),
            logger: LoggerConfig::default(),
        }
    }

    /// A small, fast scenario for tests: 60 nodes, 6 days.
    pub fn small() -> Self {
        Scenario {
            name: "citysee-small".into(),
            nodes: 60,
            side_m: 350.0,
            days: 6,
            day_secs: 120,
            packets_per_node_per_day: 6,
            sink_fix_day: Some(4),
            snow_days: vec![2],
            outage_count: 2,
            outage_days: Some(vec![1, 3]),
            burst_count: 2,
            ..Scenario::standard()
        }
    }

    /// One day as a duration.
    pub fn day_len(&self) -> SimDuration {
        SimDuration::from_secs(self.day_secs)
    }

    /// Total campaign duration.
    pub fn duration(&self) -> SimTime {
        SimTime::from_secs(self.day_secs * u64::from(self.days))
    }

    /// The (0-indexed) day an instant falls in.
    pub fn day_of(&self, t: SimTime) -> u32 {
        (t.as_secs() / self.day_secs).min(u64::from(self.days.saturating_sub(1))) as u32
    }

    /// Start of a (0-indexed) day.
    pub fn day_start(&self, day: u32) -> SimTime {
        SimTime::from_secs(self.day_secs * u64::from(day))
    }

    /// The application sending period.
    pub fn packet_interval(&self) -> SimDuration {
        SimDuration::from_secs(
            (self.day_secs / u64::from(self.packets_per_node_per_day)).max(1),
        )
    }

    /// Build the fault schedule from the scenario's narrative.
    pub fn faults(&self) -> FaultSchedule {
        let factory = RngFactory::new(self.seed);
        let mut rng = factory.stream("faults", 0);

        // Sink wiring: bad until the fix day, clean after.
        let fix = self
            .sink_fix_day
            .map(|d| self.day_start(d))
            .unwrap_or(SimTime::MAX);
        let step = |before: f64, after: f64| {
            if fix == SimTime::MAX {
                Schedule::constant(before)
            } else {
                Schedule::from_steps(before, vec![(fix, after)])
            }
        };
        let sink_prelog_drop = step(self.sink_prelog_before, self.sink_prelog_after);
        let sink_predrop = step(self.sink_predrop_before, self.sink_predrop_after);
        let serial_loss = step(self.serial_loss_before, self.serial_loss_after);

        // Snow: per-day weather steps.
        let mut weather_steps = Vec::new();
        for day in 0..self.days {
            let f = if self.snow_days.contains(&day) {
                self.snow_factor
            } else {
                1.0
            };
            weather_steps.push((self.day_start(day), f));
        }
        let weather = Schedule::from_steps(1.0, weather_steps);

        // Server outages: uniform starts, fixed length, avoid overlapping
        // by sampling starts in distinct day slots.
        let outage_len = self.day_len().mul_f64(self.outage_day_frac);
        let mut outages = Vec::new();
        let outage_days: Vec<u32> = match &self.outage_days {
            Some(days) => days.clone(),
            None => (0..self.outage_count)
                .map(|_| rng.gen_range(0..self.days))
                .collect(),
        };
        for day in outage_days {
            let frac: f64 = rng.gen_range(0.0..(1.0 - self.outage_day_frac).max(0.01));
            let start = self.day_start(day) + self.day_len().mul_f64(frac);
            outages.push((start, start + outage_len));
        }
        outages.sort();

        // Interference bursts: random region, random window of ~0.3 day.
        let mut bursts = Vec::new();
        for _ in 0..self.burst_count {
            let day = rng.gen_range(0..self.days);
            let frac: f64 = rng.gen_range(0.0..0.7);
            let start = self.day_start(day) + self.day_len().mul_f64(frac);
            let end = start + self.day_len().mul_f64(0.3);
            bursts.push(InterferenceBurst {
                center: Position {
                    x: rng.gen_range(0.0..self.side_m),
                    y: rng.gen_range(0.0..self.side_m),
                },
                radius_m: self.side_m * rng.gen_range(0.08..0.18),
                start,
                end,
                factor: rng.gen_range(0.05..0.30),
            });
        }

        FaultSchedule {
            outages,
            sink_prelog_drop,
            sink_predrop,
            serial_loss,
            weather,
            bursts,
        }
    }

    /// Build all simulator inputs.
    pub fn build(&self) -> (Topology, LinkQualityTable, FaultSchedule, SimConfig) {
        let factory = RngFactory::new(self.seed);
        let topology =
            Topology::generate(self.nodes, self.side_m, Layout::JitteredGrid, &factory);
        let table = LinkModel::build_table(&topology, &LinkModelConfig::default(), &factory);
        let faults = self.faults();
        let config = SimConfig {
            seed: self.seed,
            duration: self.duration(),
            packet_interval: self.packet_interval(),
            p_prelog_drop: self.p_prelog_drop,
            p_internal_drop: self.p_internal_drop,
            logger: self.logger,
            route_update_interval: SimDuration::from_secs((self.day_secs / 16).max(5)),
            route_update_prob: 0.97,
            queue_capacity: 16,
            ..SimConfig::default()
        };
        (topology, table, faults, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_arithmetic() {
        let s = Scenario::small();
        assert_eq!(s.day_of(SimTime::ZERO), 0);
        assert_eq!(s.day_of(s.day_start(3)), 3);
        assert_eq!(
            s.day_of(s.day_start(3) + SimDuration::from_secs(1)),
            3
        );
        assert_eq!(s.duration().as_secs(), s.day_secs * u64::from(s.days));
        // Clamped at the last day.
        assert_eq!(s.day_of(s.duration() + SimDuration::from_secs(999)), s.days - 1);
    }

    #[test]
    fn sink_schedules_step_at_fix_day() {
        let s = Scenario::standard();
        let factory = RngFactory::new(s.seed);
        let _topo = Topology::generate(30, 300.0, Layout::JitteredGrid, &factory);
        let f = s.faults();
        let before = s.day_start(22);
        let after = s.day_start(24);
        assert!(f.sink_prelog_drop.at(before) > f.sink_prelog_drop.at(after) * 10.0);
        assert!(f.serial_loss.at(before) > f.serial_loss.at(after) * 10.0);
    }

    #[test]
    fn snow_days_degrade_weather() {
        let s = Scenario::standard();
        let factory = RngFactory::new(s.seed);
        let _topo = Topology::generate(30, 300.0, Layout::JitteredGrid, &factory);
        let f = s.faults();
        assert!((f.weather.at(s.day_start(8)) - s.snow_factor).abs() < 1e-12);
        assert!((f.weather.at(s.day_start(9)) - s.snow_factor).abs() < 1e-12);
        assert!((f.weather.at(s.day_start(11)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outages_within_campaign() {
        let s = Scenario::standard();
        let factory = RngFactory::new(s.seed);
        let _topo = Topology::generate(30, 300.0, Layout::JitteredGrid, &factory);
        let f = s.faults();
        assert_eq!(f.outages.len() as u32, s.outage_count);
        for &(start, end) in &f.outages {
            assert!(start < end);
            assert!(end <= s.duration() + s.day_len());
        }
    }

    #[test]
    fn faults_are_deterministic() {
        let s = Scenario::standard();
        let factory = RngFactory::new(s.seed);
        let _topo = Topology::generate(30, 300.0, Layout::JitteredGrid, &factory);
        let a = s.faults();
        let b = s.faults();
        assert_eq!(a.outages, b.outages);
        assert_eq!(a.bursts.len(), b.bursts.len());
    }

    #[test]
    fn build_produces_valid_config() {
        let s = Scenario::small();
        let (topo, _, _, config) = s.build();
        assert_eq!(topo.len(), s.nodes);
        assert_eq!(config.validate(), Ok(()));
        assert_eq!(config.duration, s.duration());
    }
}
