//! The full network-management report.
//!
//! Renders everything Section V derives — delivery, cause breakdown with
//! sink splits, loss hotspots, the daily timeline, transport statistics,
//! baseline comparisons, and the operational recommendations the paper
//! itself drew (fix the sink wiring, test the last mile, reconsider the
//! ACK layer) — as one plain-text report an operator could act on.

use crate::analysis::Analysis;
use crate::figures::{fig6_daily_causes, fig9_breakdown, render_fig6_ascii, CAUSE_ORDER};
use crate::run::Campaign;
use eventlog::LossCause;
use refill::diagnose::PositionBreakdown;
use refill::DiagnosedCause;
use std::fmt::Write;

/// Render the complete report.
pub fn render_management_report(campaign: &Campaign, analysis: &Analysis) -> String {
    let mut out = String::new();
    let scenario = &campaign.scenario;
    let sink = campaign.topology.sink();

    let _ = writeln!(out, "================================================================");
    let _ = writeln!(out, " REFILL network-management report — {}", scenario.name);
    let _ = writeln!(out, "================================================================");
    let _ = writeln!(
        out,
        "deployment : {} nodes over {:.0} m × {:.0} m, sink at {}",
        scenario.nodes, scenario.side_m, scenario.side_m, sink
    );
    let _ = writeln!(
        out,
        "campaign   : {} days, {} packets/node/day, seed {}",
        scenario.days, scenario.packets_per_node_per_day, scenario.seed
    );
    let breakdown = fig9_breakdown(campaign, analysis);
    let total = breakdown.lost_total + breakdown.delivered_total;
    let _ = writeln!(
        out,
        "traffic    : {} packets, {} delivered ({:.1}%), {} lost",
        total,
        breakdown.delivered_total,
        100.0 * breakdown.delivered_total as f64 / total.max(1) as f64,
        breakdown.lost_total
    );

    let _ = writeln!(out, "\n-- loss causes (REFILL reconstruction) --");
    for (i, cause) in CAUSE_ORDER.iter().enumerate() {
        if breakdown.percent[i] > 0.05 {
            let _ = writeln!(out, "  {:>14}: {:5.1}%", cause.label(), breakdown.percent[i]);
        }
    }
    let _ = writeln!(
        out,
        "  received split: {:.1}% at the sink, {:.1}% elsewhere",
        breakdown.received_sink_pct, breakdown.received_other_pct
    );
    let _ = writeln!(
        out,
        "  acked split   : {:.1}% at the sink, {:.1}% elsewhere",
        breakdown.acked_sink_pct, breakdown.acked_other_pct
    );

    let _ = writeln!(out, "\n-- loss hotspots --");
    let diagnoses: Vec<_> = analysis.records.iter().map(|r| r.diagnosis.clone()).collect();
    let positions = PositionBreakdown::from_diagnoses(diagnoses.iter());
    for (node, count) in positions.hotspots().into_iter().take(6) {
        let mark = if node == sink { "  <- the sink" } else { "" };
        let _ = writeln!(out, "  {node}: {count}{mark}");
    }

    let _ = writeln!(out, "\n-- daily timeline --");
    let days = fig6_daily_causes(campaign, analysis);
    let _ = write!(out, "{}", render_fig6_ascii(&days, scenario));

    let t = &analysis.transport;
    let _ = writeln!(out, "\n-- transport statistics --");
    let _ = writeln!(
        out,
        "  est. end-to-end delay: mean {:.2}s, p95 {:.2}s ({} delivered packets)",
        t.mean_delay_s, t.p95_delay_s, t.delay_count
    );
    let _ = writeln!(
        out,
        "  mean path length {:.1} nodes, mean retransmissions {:.2}, routing loops seen {}",
        t.mean_path_len, t.mean_retransmissions, t.loops_detected
    );

    let _ = writeln!(out, "\n-- reconstruction quality (simulation-only scoring) --");
    let _ = writeln!(
        out,
        "  {} lost events inferred (precision {:.2}, recall {:.2}); cause accuracy {:.2}; \
         position accuracy {:.2}",
        analysis.flow_score.inferred,
        analysis.flow_score.precision(),
        analysis.flow_score.recall(),
        analysis.cause_score.cause_accuracy(),
        analysis.cause_score.position_accuracy()
    );
    let _ = writeln!(
        out,
        "  baselines: naive position accuracy {:.3}; correlation cause accuracy {:.3}; \
         Wit merge components {}",
        if analysis.naive.true_losses == 0 {
            1.0
        } else {
            analysis.naive.position_correct as f64 / analysis.naive.true_losses as f64
        },
        if analysis.correlation.total == 0 {
            1.0
        } else {
            analysis.correlation.cause_correct as f64 / analysis.correlation.total as f64
        },
        analysis.wit.components.len()
    );

    // Recommendations, mirroring §V-D.
    let _ = writeln!(out, "\n-- recommendations --");
    let sink_share = breakdown.received_sink_pct + breakdown.acked_sink_pct;
    if sink_share > 25.0 {
        let _ = writeln!(
            out,
            "  * {sink_share:.0}% of losses die at the sink AFTER arrival: inspect the \
             sink-to-backbone connection (the paper's RS232 cable) and the sink's MCU load."
        );
    }
    let outage_idx = CAUSE_ORDER
        .iter()
        .position(|c| *c == DiagnosedCause::Known(LossCause::ServerOutage))
        .expect("known cause");
    if breakdown.percent[outage_idx] > 10.0 {
        let _ = writeln!(
            out,
            "  * {:.0}% of losses are server outages: the last mile (backbone + server) \
             needs the same testing discipline as the WSN itself.",
            breakdown.percent[outage_idx]
        );
    }
    let acked_idx = CAUSE_ORDER
        .iter()
        .position(|c| *c == DiagnosedCause::Known(LossCause::AckedLoss))
        .expect("known cause");
    if breakdown.percent[acked_idx] > 10.0 {
        let _ = writeln!(
            out,
            "  * {:.0}% of losses were hardware-acked and then dropped in the receiver: \
             consider software-layer ACKs (see the `implications` experiment for the \
             trade-off).",
            breakdown.percent[acked_idx]
        );
    }
    let timeout_idx = CAUSE_ORDER
        .iter()
        .position(|c| *c == DiagnosedCause::Known(LossCause::TimeoutLoss))
        .expect("known cause");
    if breakdown.percent[timeout_idx] < 5.0 {
        let _ = writeln!(
            out,
            "  * link losses are under control ({:.1}%): the retransmission budget is \
             doing its job; focus on in-node losses.",
            breakdown.percent[timeout_idx]
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, run_scenario, Scenario};

    #[test]
    fn report_covers_every_section() {
        let campaign = run_scenario(&Scenario::small());
        let analysis = analyze(&campaign);
        let report = render_management_report(&campaign, &analysis);
        for needle in [
            "network-management report",
            "loss causes",
            "loss hotspots",
            "daily timeline",
            "transport statistics",
            "reconstruction quality",
            "recommendations",
            "<- the sink",
        ] {
            assert!(report.contains(needle), "missing section: {needle}");
        }
        // The sink recommendation should fire in this scenario.
        assert!(report.contains("sink-to-backbone"));
        // Deterministic.
        let again = render_management_report(&campaign, &analysis);
        assert_eq!(report, again);
    }
}
