//! # citysee — the CitySee-like deployment scenario
//!
//! Reconstructs the evaluation environment of Section V: an urban
//! CO₂-monitoring network (1,200 nodes in the paper; scale is a knob here)
//! running for 30 days with the named fault processes —
//!
//! * the sink's unstable RS232 wiring (elevated acked/received losses at
//!   the sink) **fixed on day 23**,
//! * **snow on days 9–10** degrading link quality network-wide,
//! * **base-station server outages** (22.6 % of the paper's losses),
//! * localized interference bursts (the bursty timeout/duplicate ellipses
//!   of Figure 5).
//!
//! [`scenario`] builds the simulator inputs, [`run`] executes a campaign
//! (simulate → lossy log collection → merge), [`analysis`] applies REFILL
//! and the baselines, and [`figures`] extracts the data series behind every
//! figure of the paper.

pub mod analysis;
pub mod figures;
pub mod report;
pub mod run;
pub mod scenario;

pub use analysis::{analyze, analyze_recorded, Analysis, PacketRecord};
pub use report::render_management_report;
pub use run::{run_scenario, Campaign};
pub use scenario::Scenario;
