//! The analysis pipeline: REFILL + baselines over a campaign.
//!
//! This is the "PC side" of the paper's implementation: it sees only the
//! collected (lossy, unsynchronized) logs and the base station's data, and
//! produces per-packet diagnoses. Ground truth is touched exclusively for
//! *scoring* — quantifying how well the reconstruction did, which the real
//! deployment could never know.

use crate::run::Campaign;
use baselines::naive::naive_diagnose;
use baselines::source_view::SourceView;
use baselines::time_correlation::{correlate_causes, CorrelationConfig};
use baselines::wit::{wit_merge, WitMerge};
use eventlog::event::BASE_STATION;
use eventlog::{LossCause, PacketFate, PacketId, TruthEvent};
use netsim::{NodeId, SimTime};
use rayon::prelude::*;
use refill::diagnose::{Diagnoser, Diagnosis};
use refill::score::{score_cause, score_flow, score_path, CauseScore, FlowScore, PathScore};
use refill::sigcache::{CacheStats, SigCache};
use refill::trace::{CtpVocabulary, Reconstructor};
use refill_telemetry::{NoopRecorder, Recorder, Stage, StageTimer, TelemetrySnapshot};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything known (and inferred) about one packet after analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PacketRecord {
    /// The packet.
    pub packet: PacketId,
    /// Source-view time estimate (back-dated from sequence gaps).
    pub est_time: Option<SimTime>,
    /// REFILL's diagnosis.
    pub diagnosis: Diagnosis,
    /// Ground truth (for scoring and figure annotation only).
    pub fate: PacketFate,
}

/// Accuracy of the naive single-node baseline.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NaiveSummary {
    /// Packets the naive analysis declared lost.
    pub claimed_losses: usize,
    /// Of the truly lost packets it flagged, how many were blamed on the
    /// correct node.
    pub position_correct: usize,
    /// Truly lost packets.
    pub true_losses: usize,
}

/// Accuracy of the time-correlation baseline.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CorrelationSummary {
    /// Losses it attributed to some cause.
    pub attributed: usize,
    /// Attributions matching the true cause.
    pub cause_correct: usize,
    /// Losses examined.
    pub total: usize,
}

/// Per-packet transport statistics the event flows reveal (Section II:
/// "the packet related information, e.g. per-packet delay, packet
/// retransmission, packet loss, can also be revealed").
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TransportStats {
    /// Delivered packets with a delay estimate.
    pub delay_count: usize,
    /// Mean estimated end-to-end delay (seconds). The estimate is
    /// analysis-side only: per origin, the send phase is fitted as
    /// `min(arrival − seqno × period)` over received packets, so queuing
    /// and retransmission delay show up as positive offsets.
    pub mean_delay_s: f64,
    /// 95th-percentile estimated delay (seconds).
    pub p95_delay_s: f64,
    /// Mean observed retransmissions per packet.
    pub mean_retransmissions: f64,
    /// Mean reconstructed path length (nodes).
    pub mean_path_len: f64,
    /// Packets whose reconstructed path revisits a node.
    pub loops_detected: usize,
}

/// The full analysis result.
pub struct Analysis {
    /// Per-packet records, sorted by packet id.
    pub records: Vec<PacketRecord>,
    /// Aggregate inference quality (REFILL flows vs truth).
    pub flow_score: FlowScore,
    /// Aggregate diagnosis quality (REFILL causes vs truth).
    pub cause_score: CauseScore,
    /// Aggregate path-recovery quality (reconstructed vs true paths).
    pub path_score: PathScore,
    /// Wit-style merge outcome on the collected logs.
    pub wit: WitMerge,
    /// Naive baseline accuracy.
    pub naive: NaiveSummary,
    /// Time-correlation baseline accuracy.
    pub correlation: CorrelationSummary,
    /// Delay / retransmission / path statistics.
    pub transport: TransportStats,
    /// Reconstruction memoization counters: most CitySee packets share a
    /// handful of happy-path flow shapes, so the hit rate here is the
    /// fraction of packets whose reconstruction was a template rehydration
    /// instead of a full pipeline run.
    pub recon_cache: CacheStats,
    /// Everything the attached recorder collected during this analysis
    /// (empty when no recorder was attached).
    pub telemetry: TelemetrySnapshot,
}

/// Run REFILL and all baselines over a campaign.
pub fn analyze(campaign: &Campaign) -> Analysis {
    analyze_recorded(campaign, Arc::new(NoopRecorder))
}

/// [`analyze`] with telemetry: the reconstructor, its signature cache, and
/// every analysis stage (reconstruction + diagnosis, baselines, transport
/// statistics) report into `recorder`, and the final snapshot is returned
/// on [`Analysis::telemetry`].
///
/// A campaign covers one contiguous stretch of days; callers wanting
/// per-day stage timings (a day is CitySee's natural reporting unit) run
/// one single-day campaign per day and keep one snapshot each — stages are
/// cumulative within a recorder, so reusing one recorder across days sums
/// them instead.
pub fn analyze_recorded(campaign: &Campaign, recorder: Arc<dyn Recorder>) -> Analysis {
    let scenario = &campaign.scenario;
    let sink = campaign.topology.sink();

    // Source view from the base station's reliable log.
    let bs_log = campaign
        .collected
        .iter()
        .find(|l| l.node == BASE_STATION)
        .cloned()
        .unwrap_or_else(|| eventlog::logger::LocalLog::new(BASE_STATION));
    let source_view = SourceView::from_bs_log(&bs_log, scenario.packet_interval());

    // REFILL setup. The outage schedule is operational knowledge (the
    // server records its own downtime), so the diagnoser may use it.
    let (_, _, faults, config) = scenario.build();
    let vocabulary = CtpVocabulary {
        log_origin: config.log_origin,
        log_enqueue: config.log_enqueue,
    };
    let recon = Reconstructor::new(vocabulary)
        .with_sink(sink)
        .with_recorder(Arc::clone(&recorder));
    let diagnoser = Diagnoser::new()
        .with_outages(faults.outages.clone())
        .with_sink(sink);

    // Truth events grouped per packet, for flow scoring.
    let mut truth_by_packet: FxHashMap<PacketId, Vec<TruthEvent>> = FxHashMap::default();
    for te in &campaign.sim.truth.events {
        truth_by_packet
            .entry(te.event.packet)
            .or_default()
            .push(*te);
    }

    // Per-packet reconstruction + diagnosis + scoring, in parallel.
    let index = campaign.merged.packet_index_recorded(&*recorder);
    let mut ids: Vec<PacketId> = index.ids().to_vec();
    // Packets never mentioned in any log still deserve records (fate says
    // they existed); they get an Unknown diagnosis through an empty flow.
    for id in campaign.sim.truth.fates.keys() {
        if index.get(*id).is_none() {
            ids.push(*id);
        }
    }
    ids.sort_unstable();

    let empty_path: Vec<NodeId> = Vec::new();
    // With no recorder attached the cache keeps its private per-instance
    // stats (which `Analysis::recon_cache` reads); with one attached, the
    // cache counters land in the shared snapshot too.
    let cache = if recorder.enabled() {
        SigCache::default().with_recorder(Arc::clone(&recorder))
    } else {
        SigCache::default()
    };
    let per_packet: Vec<(PacketRecord, FlowScore, CauseScore, PathScore, bool)> = ids
        .par_iter()
        .map(|id| {
            let events = index.get(*id).unwrap_or(&[]);
            let report = recon.reconstruct_packet_cached(*id, events, &cache);
            let est_time = source_view.estimate_time(*id);
            let diagnosis = {
                // Stage totals sum CPU time across rayon workers, so the
                // diagnose span can exceed wall-clock time.
                let _span = StageTimer::start(&*recorder, Stage::Diagnose);
                diagnoser.diagnose(&report, est_time)
            };
            let truth_events = truth_by_packet
                .get(id)
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
            let fs = score_flow(&report, truth_events);
            let true_path = campaign.sim.truth.paths.get(id).unwrap_or(&empty_path);
            let ps = score_path(&report, true_path);
            let fate = campaign
                .sim
                .truth
                .fates
                .get(id)
                .copied()
                .unwrap_or(PacketFate::Delivered { at: SimTime::ZERO });
            let cs = score_cause(&diagnosis, &fate);
            let looped = report.has_routing_loop();
            (
                PacketRecord {
                    packet: *id,
                    est_time,
                    diagnosis,
                    fate,
                },
                fs,
                cs,
                ps,
                looped,
            )
        })
        .collect();

    let mut records = Vec::with_capacity(per_packet.len());
    let mut flow_score = FlowScore::default();
    let mut cause_score = CauseScore::default();
    let mut path_score = PathScore::default();
    let mut loops_detected = 0usize;
    for (rec, fs, cs, ps, looped) in per_packet {
        flow_score.merge(&fs);
        cause_score.merge(&cs);
        path_score.merge(&ps);
        loops_detected += usize::from(looped);
        records.push(rec);
    }
    let transport = {
        let _span = StageTimer::start(&*recorder, Stage::Transport);
        transport_stats(&records, &bs_log, scenario, loops_detected)
    };

    // Baselines.
    let (wit, naive, correlation) = {
        let _span = StageTimer::start(&*recorder, Stage::Baselines);
        (
            wit_merge(&campaign.collected),
            summarize_naive(campaign, sink),
            summarize_correlation(campaign, &source_view),
        )
    };

    Analysis {
        records,
        flow_score,
        cause_score,
        path_score,
        wit,
        naive,
        correlation,
        transport,
        recon_cache: cache.stats(),
        telemetry: recorder.snapshot(),
    }
}

/// Estimate per-packet delays from the base station's log alone and fold in
/// the flow-derived retransmission/path statistics.
fn transport_stats(
    records: &[PacketRecord],
    bs_log: &eventlog::logger::LocalLog,
    scenario: &crate::scenario::Scenario,
    loops_detected: usize,
) -> TransportStats {
    use eventlog::EventKind;
    let period = scenario.packet_interval().as_micros();

    // Arrival times per origin (seqno-sorted), then a per-origin send-phase
    // fit: phase = min(arrival − seqno × period).
    let mut arrivals: FxHashMap<NodeId, Vec<(u32, u64)>> = FxHashMap::default();
    for entry in &bs_log.entries {
        if matches!(entry.event.kind, EventKind::BsRecv) {
            if let Some(ts) = entry.local_ts {
                arrivals
                    .entry(entry.event.packet.origin)
                    .or_default()
                    .push((entry.event.packet.seqno, ts));
            }
        }
    }
    let mut delays_us: Vec<u64> = Vec::new();
    for per_origin in arrivals.values() {
        let phase = per_origin
            .iter()
            .map(|&(s, ts)| ts.saturating_sub(u64::from(s) * period))
            .min()
            .unwrap_or(0);
        for &(s, ts) in per_origin {
            let est_send = phase + u64::from(s) * period;
            delays_us.push(ts.saturating_sub(est_send));
        }
    }
    delays_us.sort_unstable();
    let delay_count = delays_us.len();
    let mean_delay_s = if delay_count == 0 {
        0.0
    } else {
        delays_us.iter().sum::<u64>() as f64 / delay_count as f64 / 1e6
    };
    let p95_delay_s = delays_us
        .get((delay_count.saturating_sub(1)) * 95 / 100)
        .map(|&d| d as f64 / 1e6)
        .unwrap_or(0.0);

    let n = records.len().max(1) as f64;
    let mean_retransmissions =
        records.iter().map(|r| r.diagnosis.retransmissions).sum::<usize>() as f64 / n;
    let mean_path_len = records.iter().map(|r| r.diagnosis.path_len).sum::<usize>() as f64 / n;

    TransportStats {
        delay_count,
        mean_delay_s,
        p95_delay_s,
        mean_retransmissions,
        mean_path_len,
        loops_detected,
    }
}

fn summarize_naive(campaign: &Campaign, _sink: NodeId) -> NaiveSummary {
    let verdicts = naive_diagnose(&campaign.merged);
    let mut s = NaiveSummary {
        true_losses: campaign.sim.truth.lost_count(),
        ..NaiveSummary::default()
    };
    for v in &verdicts {
        if !v.lost {
            continue;
        }
        s.claimed_losses += 1;
        if let Some(PacketFate::Lost { at_node, .. }) = campaign.sim.truth.fates.get(&v.packet)
        {
            if v.claimed_node == Some(*at_node) {
                s.position_correct += 1;
            }
        }
    }
    s
}

fn summarize_correlation(campaign: &Campaign, source_view: &SourceView) -> CorrelationSummary {
    let losses: Vec<(PacketId, SimTime)> = source_view
        .losses
        .iter()
        .map(|l| (l.packet, l.est_time))
        .collect();
    let verdicts = correlate_causes(
        &losses,
        &campaign.collected,
        &CorrelationConfig::default(),
    );
    let mut s = CorrelationSummary {
        total: verdicts.len(),
        ..CorrelationSummary::default()
    };
    for v in &verdicts {
        let Some(cause) = v.cause else { continue };
        s.attributed += 1;
        if let Some(PacketFate::Lost { cause: truth, .. }) =
            campaign.sim.truth.fates.get(&v.packet)
        {
            if cause == *truth {
                s.cause_correct += 1;
            }
        }
    }
    s
}

impl Analysis {
    /// Records of truly lost packets.
    pub fn lost_records(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records.iter().filter(|r| !r.fate.delivered())
    }

    /// Count of losses REFILL attributed to each cause, from the analysis
    /// side (diagnosed, not truth).
    pub fn diagnosed_cause_counts(&self) -> FxHashMap<refill::DiagnosedCause, usize> {
        let mut out = FxHashMap::default();
        for r in &self.records {
            if r.diagnosis.delivered {
                continue;
            }
            if let Some(c) = r.diagnosis.cause {
                *out.entry(c).or_insert(0) += 1;
            }
        }
        out
    }

    /// Truth cause counts, for side-by-side reporting.
    pub fn truth_cause_counts(&self) -> FxHashMap<LossCause, usize> {
        let mut out = FxHashMap::default();
        for r in &self.records {
            if let Some(c) = r.fate.cause() {
                *out.entry(c).or_insert(0) += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_scenario;
    use crate::scenario::Scenario;

    fn analyzed() -> (Campaign, Analysis) {
        let c = run_scenario(&Scenario::small());
        let a = analyze(&c);
        (c, a)
    }

    #[test]
    fn analysis_covers_every_packet() {
        let (c, a) = analyzed();
        assert_eq!(a.records.len(), c.sim.truth.packet_count());
        assert!(a.records.windows(2).all(|w| w[0].packet < w[1].packet));
    }

    #[test]
    fn refill_inference_is_precise() {
        let (_, a) = analyzed();
        // Inferred events should overwhelmingly correspond to events that
        // truly happened (the augmentation is semantics-driven).
        assert!(
            a.flow_score.precision() > 0.8,
            "precision {} too low ({} matched / {} inferred)",
            a.flow_score.precision(),
            a.flow_score.matched,
            a.flow_score.inferred
        );
        assert!(a.flow_score.inferred > 0, "some events should be inferred");
    }

    #[test]
    fn refill_delivery_verdicts_are_accurate() {
        let (_, a) = analyzed();
        assert!(
            a.cause_score.delivery_accuracy() > 0.97,
            "delivery accuracy {}",
            a.cause_score.delivery_accuracy()
        );
    }

    #[test]
    fn refill_beats_naive_on_loss_positions() {
        let (_, a) = analyzed();
        let naive_acc = if a.naive.true_losses == 0 {
            1.0
        } else {
            a.naive.position_correct as f64 / a.naive.true_losses as f64
        };
        assert!(
            a.cause_score.position_accuracy() > naive_acc,
            "REFILL position accuracy {} should beat naive {}",
            a.cause_score.position_accuracy(),
            naive_acc
        );
    }

    #[test]
    fn refill_beats_time_correlation_on_causes() {
        let (_, a) = analyzed();
        let corr_acc = if a.correlation.total == 0 {
            1.0
        } else {
            a.correlation.cause_correct as f64 / a.correlation.total as f64
        };
        assert!(
            a.cause_score.cause_accuracy() > corr_acc,
            "REFILL cause accuracy {} should beat correlation {}",
            a.cause_score.cause_accuracy(),
            corr_acc
        );
    }

    #[test]
    fn transport_stats_are_plausible() {
        let (c, a) = analyzed();
        let t = &a.transport;
        assert_eq!(
            t.delay_count as u64,
            c.sim.counters.get("delivered"),
            "every delivered packet gets a delay estimate"
        );
        assert!(t.mean_delay_s >= 0.0);
        assert!(t.p95_delay_s >= t.mean_delay_s * 0.5);
        assert!(t.mean_path_len > 1.5, "multi-hop network: {}", t.mean_path_len);
        assert!(t.mean_retransmissions >= 0.0);
    }

    #[test]
    fn paths_are_recovered_well() {
        let (_, a) = analyzed();
        assert!(
            a.path_score.prefix_coverage() > 0.8,
            "path prefix coverage {}",
            a.path_score.prefix_coverage()
        );
        assert!(
            a.path_score.exact_rate() > 0.5,
            "exact path rate {}",
            a.path_score.exact_rate()
        );
    }

    #[test]
    fn wit_cannot_merge_local_logs() {
        let (_, a) = analyzed();
        assert!(a.wit.fully_disconnected());
    }

    #[test]
    fn reconstruction_cache_absorbs_duplicate_flow_shapes() {
        let (c, a) = analyzed();
        let stats = &a.recon_cache;
        assert_eq!(stats.lookups() as usize, c.sim.truth.packet_count());
        assert!(
            (stats.entries as u64) < stats.lookups() / 2,
            "CitySee-like traffic repeats flow shapes: {} unique of {} packets",
            stats.entries,
            stats.lookups()
        );
        assert!(
            stats.hit_rate() > 0.3,
            "hit rate {:.2} unexpectedly low",
            stats.hit_rate()
        );
    }

    #[test]
    fn diagnosed_causes_resemble_truth() {
        // Total-variation distance between the truth and diagnosed cause
        // distributions stays small: shares may shift a few points under
        // log loss, but the composition is preserved.
        let (_, a) = analyzed();
        let truth = a.truth_cause_counts();
        let diag = a.diagnosed_cause_counts();
        let truth_total: usize = truth.values().sum();
        let diag_total: usize = diag.values().sum();
        assert!(truth_total > 0 && diag_total > 0);
        let mut tv = 0.0;
        for cause in eventlog::LossCause::ALL {
            let p = truth.get(&cause).copied().unwrap_or(0) as f64 / truth_total as f64;
            let q = diag
                .get(&refill::DiagnosedCause::Known(cause))
                .copied()
                .unwrap_or(0) as f64
                / diag_total as f64;
            tv += (p - q).abs();
        }
        tv += diag
            .get(&refill::DiagnosedCause::Unknown)
            .copied()
            .unwrap_or(0) as f64
            / diag_total as f64;
        tv /= 2.0;
        assert!(
            tv < 0.2,
            "cause distributions diverge (TV={tv:.3}): truth {truth:?} vs diagnosed {diag:?}"
        );
    }
}
