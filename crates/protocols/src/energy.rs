//! LPL duty-cycling energy accounting.
//!
//! Section V-A.2: CitySee ran Low Power Listening — each node periodically
//! wakes to sample the channel, sleeps when idle, and senders pay for long
//! preambles (retransmitting the packet until the receiver's next wakeup).
//! This module gives the substrate the standard LPL energy model so that
//! protocol decisions the paper discusses (retransmission budgets, ACK at
//! PHY vs software) have measurable energy consequences:
//!
//! * **baseline**: one channel sample per wakeup interval, for the whole
//!   run — the cost of merely being duty-cycled;
//! * **transmit**: each attempt pays TX power for half a wakeup interval on
//!   average (the preamble until the receiver wakes) plus the frame time;
//! * **receive**: each arriving frame pays RX power for the frame time plus
//!   the post-receive listen window.

use netsim::{NodeId, SimDuration};
use serde::{Deserialize, Serialize};

/// Radio and LPL timing/power parameters (defaults ≈ CC2420 at 3 V).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// LPL wakeup period.
    pub wakeup_interval: SimDuration,
    /// Channel-sample duration per wakeup.
    pub sample_time: SimDuration,
    /// On-air time of one data frame.
    pub frame_time: SimDuration,
    /// Post-receive listen window (for consecutive packets).
    pub after_recv_window: SimDuration,
    /// TX draw in milliwatts.
    pub tx_mw: f64,
    /// RX/listen draw in milliwatts.
    pub rx_mw: f64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            wakeup_interval: SimDuration::from_millis(512),
            sample_time: SimDuration::from_millis(5),
            frame_time: SimDuration::from_millis(4),
            after_recv_window: SimDuration::from_millis(50),
            tx_mw: 52.2, // CC2420 TX @ 0 dBm, 3 V
            rx_mw: 56.4, // CC2420 RX, 3 V
        }
    }
}

impl EnergyConfig {
    /// Energy of one transmission attempt, in millijoules.
    pub fn tx_attempt_mj(&self) -> f64 {
        // mW × s = mJ.
        let preamble_s = self.wakeup_interval.as_secs_f64() / 2.0;
        (preamble_s + self.frame_time.as_secs_f64()) * self.tx_mw
    }

    /// Energy of one frame reception, in millijoules.
    pub fn rx_frame_mj(&self) -> f64 {
        (self.frame_time.as_secs_f64() + self.after_recv_window.as_secs_f64()) * self.rx_mw
    }

    /// Baseline duty-cycle energy over a span, in millijoules.
    pub fn baseline_mj(&self, span: SimDuration) -> f64 {
        let wakeups = span.as_secs_f64() / self.wakeup_interval.as_secs_f64();
        wakeups * self.sample_time.as_secs_f64() * self.rx_mw
    }

    /// The idle duty cycle (radio-on fraction with no traffic).
    pub fn idle_duty_cycle(&self) -> f64 {
        self.sample_time.as_secs_f64() / self.wakeup_interval.as_secs_f64()
    }
}

/// Per-node energy ledger, filled by the simulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Transmit energy per node (mJ).
    pub tx_mj: Vec<f64>,
    /// Receive energy per node (mJ).
    pub rx_mj: Vec<f64>,
    /// Baseline duty-cycle energy per node (mJ).
    pub baseline_mj: Vec<f64>,
}

impl EnergyLedger {
    /// A ledger for `n` nodes.
    pub fn new(n: usize) -> Self {
        EnergyLedger {
            tx_mj: vec![0.0; n],
            rx_mj: vec![0.0; n],
            baseline_mj: vec![0.0; n],
        }
    }

    /// Charge one transmission attempt to `node`.
    pub fn charge_tx(&mut self, node: NodeId, config: &EnergyConfig) {
        self.tx_mj[node.index()] += config.tx_attempt_mj();
    }

    /// Charge one frame reception to `node`.
    pub fn charge_rx(&mut self, node: NodeId, config: &EnergyConfig) {
        self.rx_mj[node.index()] += config.rx_frame_mj();
    }

    /// Charge the whole-run baseline to every node.
    pub fn charge_baseline(&mut self, span: SimDuration, config: &EnergyConfig) {
        let mj = config.baseline_mj(span);
        for b in &mut self.baseline_mj {
            *b += mj;
        }
    }

    /// Total energy of `node` (mJ).
    pub fn total_mj(&self, node: NodeId) -> f64 {
        self.tx_mj[node.index()] + self.rx_mj[node.index()] + self.baseline_mj[node.index()]
    }

    /// Network-wide total (mJ).
    pub fn network_total_mj(&self) -> f64 {
        (0..self.tx_mj.len())
            .map(|i| self.total_mj(NodeId(i as u16)))
            .sum()
    }

    /// Nodes ranked by total energy, descending — the hotspots whose
    /// batteries die first.
    pub fn hotspots(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = (0..self.tx_mj.len())
            .map(|i| {
                let n = NodeId(i as u16);
                (n, self.total_mj(n))
            })
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EnergyConfig {
        EnergyConfig::default()
    }

    #[test]
    fn idle_duty_cycle_is_about_one_percent() {
        let d = cfg().idle_duty_cycle();
        assert!(d > 0.005 && d < 0.02, "duty cycle {d}");
    }

    #[test]
    fn tx_attempt_dominated_by_preamble() {
        let c = cfg();
        // Half a wakeup interval at 52.2 mW ≈ 13.4 mJ.
        let mj = c.tx_attempt_mj();
        assert!(mj > 10.0 && mj < 20.0, "tx attempt {mj} mJ");
    }

    #[test]
    fn rx_frame_is_much_cheaper_than_tx() {
        let c = cfg();
        assert!(c.rx_frame_mj() < c.tx_attempt_mj() / 2.0);
        assert!(c.rx_frame_mj() > 0.0);
    }

    #[test]
    fn baseline_scales_linearly() {
        let c = cfg();
        let one = c.baseline_mj(SimDuration::from_secs(100));
        let two = c.baseline_mj(SimDuration::from_secs(200));
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn ledger_accumulates_and_ranks() {
        let c = cfg();
        let mut l = EnergyLedger::new(3);
        l.charge_tx(NodeId(1), &c);
        l.charge_tx(NodeId(1), &c);
        l.charge_rx(NodeId(2), &c);
        l.charge_baseline(SimDuration::from_secs(60), &c);
        assert!(l.total_mj(NodeId(1)) > l.total_mj(NodeId(2)));
        assert!(l.total_mj(NodeId(2)) > l.total_mj(NodeId(0)));
        let hot = l.hotspots();
        assert_eq!(hot[0].0, NodeId(1));
        assert!((l.network_total_mj()
            - (l.total_mj(NodeId(0)) + l.total_mj(NodeId(1)) + l.total_mj(NodeId(2))))
        .abs()
            < 1e-9);
    }
}
