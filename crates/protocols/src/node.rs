//! Per-node runtime state: forwarding queue, duplicate caches, MAC service.
//!
//! This models the OS-level behaviour Section V-D.3 blames for *node*
//! losses (as opposed to link losses): a bounded forwarding queue whose
//! overflow discards packets, a bounded link-layer duplicate cache keyed by
//! `(origin, seqno, THL)` (retransmission duplicates), and CTP's in-queue
//! duplicate check keyed by `(origin, seqno)` (routing-loop duplicates).

use crate::packet::DataPacket;
use eventlog::PacketId;
use std::collections::VecDeque;

/// Why the node refused an incoming packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptError {
    /// Matched the duplicate cache or an in-queue copy.
    Duplicate,
    /// The forwarding queue is full.
    QueueFull,
}

/// A bounded FIFO duplicate cache.
#[derive(Debug, Clone)]
pub struct DupCache {
    entries: VecDeque<(PacketId, u8)>,
    capacity: usize,
}

impl DupCache {
    /// A cache holding up to `capacity` signatures.
    pub fn new(capacity: usize) -> Self {
        DupCache {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// True if `(id, thl)` is in the cache.
    pub fn contains(&self, id: PacketId, thl: u8) -> bool {
        self.entries.iter().any(|&(i, t)| i == id && t == thl)
    }

    /// Insert a signature, evicting the oldest if full.
    pub fn insert(&mut self, id: PacketId, thl: u8) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((id, thl));
    }
}

/// The MAC's current service slot.
#[derive(Debug, Clone, Copy)]
pub struct MacSlot {
    /// Packet being sent.
    pub packet: DataPacket,
    /// Next-hop target chosen at service start.
    pub target: netsim::NodeId,
    /// Attempts made so far.
    pub attempts: u32,
    /// Set when an ACK arrived (slot completes).
    pub acked: bool,
}

/// Runtime state of one sensor node.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Forwarding queue.
    queue: VecDeque<DataPacket>,
    queue_capacity: usize,
    /// Link-layer duplicate cache, keyed (id, THL).
    dup_cache: DupCache,
    /// Current MAC service slot, if transmitting.
    pub mac: Option<MacSlot>,
}

impl NodeState {
    /// Fresh state with the given capacities.
    pub fn new(queue_capacity: usize, dup_cache_size: usize) -> Self {
        NodeState {
            queue: VecDeque::with_capacity(queue_capacity.min(64)),
            queue_capacity,
            dup_cache: DupCache::new(dup_cache_size),
            mac: None,
        }
    }

    /// Number of queued packets.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Duplicate test for an arriving packet: link-layer cache (same THL)
    /// or an identical packet already queued / in service (loop case).
    pub fn is_duplicate(&self, packet: &DataPacket) -> bool {
        self.dup_cache.contains(packet.id, packet.thl)
            || self.queue.iter().any(|q| q.id == packet.id)
            || self
                .mac
                .as_ref()
                .is_some_and(|m| m.packet.id == packet.id)
    }

    /// Try to accept an arriving packet into the forwarding queue. On
    /// success the packet's signature enters the duplicate cache.
    pub fn accept(&mut self, packet: DataPacket) -> Result<(), AcceptError> {
        if self.is_duplicate(&packet) {
            return Err(AcceptError::Duplicate);
        }
        if self.queue.len() >= self.queue_capacity {
            return Err(AcceptError::QueueFull);
        }
        self.dup_cache.insert(packet.id, packet.thl);
        self.queue.push_back(packet);
        Ok(())
    }

    /// Record a signature without queueing (used by the sink, which has no
    /// radio forwarding queue).
    pub fn note_seen(&mut self, packet: &DataPacket) {
        self.dup_cache.insert(packet.id, packet.thl);
    }

    /// Pop the next packet to serve, if the MAC is idle.
    pub fn next_to_serve(&mut self) -> Option<DataPacket> {
        if self.mac.is_some() {
            return None;
        }
        self.queue.pop_front()
    }

    /// True if there is work (queued packets or an active slot).
    pub fn busy(&self) -> bool {
        self.mac.is_some() || !self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::NodeId;

    fn pkt(origin: u16, seq: u32, thl: u8) -> DataPacket {
        DataPacket {
            id: PacketId::new(NodeId(origin), seq),
            thl,
        }
    }

    #[test]
    fn accept_then_duplicate_same_thl() {
        let mut n = NodeState::new(4, 8);
        assert!(n.accept(pkt(1, 0, 2)).is_ok());
        assert_eq!(n.accept(pkt(1, 0, 2)), Err(AcceptError::Duplicate));
    }

    #[test]
    fn in_queue_duplicate_caught_even_with_different_thl() {
        // Routing loop: same packet id, higher THL, original still queued.
        let mut n = NodeState::new(4, 8);
        assert!(n.accept(pkt(1, 0, 2)).is_ok());
        assert_eq!(n.accept(pkt(1, 0, 5)), Err(AcceptError::Duplicate));
    }

    #[test]
    fn in_service_duplicate_caught() {
        let mut n = NodeState::new(4, 8);
        n.accept(pkt(1, 0, 2)).unwrap();
        let p = n.next_to_serve().unwrap();
        n.mac = Some(MacSlot {
            packet: p,
            target: NodeId(9),
            attempts: 1,
            acked: false,
        });
        assert_eq!(n.accept(pkt(1, 0, 6)), Err(AcceptError::Duplicate));
    }

    #[test]
    fn loop_packet_accepted_after_cache_eviction_and_forwarding() {
        // Small cache: once the signature is evicted and the packet is no
        // longer queued, a revisit is accepted (the Case 4 situation).
        let mut n = NodeState::new(8, 2);
        n.accept(pkt(1, 0, 0)).unwrap();
        let _served = n.next_to_serve().unwrap();
        n.mac = None; // completed, left the node
        // Evict (1,0,0) from the 2-entry cache.
        n.accept(pkt(2, 0, 0)).unwrap();
        assert!(n.next_to_serve().is_some());
        n.mac = None;
        n.accept(pkt(3, 0, 0)).unwrap();
        assert!(n.next_to_serve().is_some());
        n.mac = None;
        // Revisit with higher THL: no longer remembered anywhere.
        assert!(n.accept(pkt(1, 0, 3)).is_ok());
    }

    #[test]
    fn queue_overflow() {
        let mut n = NodeState::new(2, 16);
        assert!(n.accept(pkt(1, 0, 0)).is_ok());
        assert!(n.accept(pkt(1, 1, 0)).is_ok());
        assert_eq!(n.accept(pkt(1, 2, 0)), Err(AcceptError::QueueFull));
        assert_eq!(n.queue_len(), 2);
    }

    #[test]
    fn fifo_service_order() {
        let mut n = NodeState::new(4, 16);
        n.accept(pkt(1, 0, 0)).unwrap();
        n.accept(pkt(1, 1, 0)).unwrap();
        assert_eq!(n.next_to_serve().unwrap().id.seqno, 0);
        // MAC busy blocks further service.
        n.mac = Some(MacSlot {
            packet: pkt(1, 0, 0),
            target: NodeId(9),
            attempts: 0,
            acked: false,
        });
        assert!(n.next_to_serve().is_none());
        n.mac = None;
        assert_eq!(n.next_to_serve().unwrap().id.seqno, 1);
    }

    #[test]
    fn busy_reflects_queue_and_mac() {
        let mut n = NodeState::new(4, 16);
        assert!(!n.busy());
        n.accept(pkt(1, 0, 0)).unwrap();
        assert!(n.busy());
        let p = n.next_to_serve().unwrap();
        assert!(!n.busy());
        n.mac = Some(MacSlot {
            packet: p,
            target: NodeId(9),
            attempts: 0,
            acked: false,
        });
        assert!(n.busy());
    }

    #[test]
    fn dup_cache_eviction_is_fifo() {
        let mut c = DupCache::new(2);
        let a = PacketId::new(NodeId(1), 0);
        let b = PacketId::new(NodeId(1), 1);
        let d = PacketId::new(NodeId(1), 2);
        c.insert(a, 0);
        c.insert(b, 0);
        c.insert(d, 0);
        assert!(!c.contains(a, 0), "oldest evicted");
        assert!(c.contains(b, 0));
        assert!(c.contains(d, 0));
    }
}
