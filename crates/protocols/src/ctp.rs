//! CTP routing: ETX costs, parent selection, stale-advertisement loops.
//!
//! Section V-A.3: each node picks the parent minimizing
//! `pathETX(parent) + linkETX(self, parent)`; path costs propagate through
//! beacons. We model the *converged* outcome of beaconing directly —
//! computing true path costs from the current (modulated) link qualities —
//! but apply updates **per node with a staleness probability**: a node may
//! keep routing on an old advertisement for a while. Under churn (weather,
//! interference) this produces exactly the transient routing loops that CTP
//! deployments see, which in turn produce the duplicate losses of Figure 5.

use netsim::link::LinkModel;
use netsim::{NodeId, SimTime, Topology};
use rand::Rng;
use std::collections::BinaryHeap;

/// ETX of a link with PRR `p` (∞ for unusable links).
pub fn link_etx(prr: f64) -> f64 {
    if prr <= 1e-6 {
        f64::INFINITY
    } else {
        1.0 / prr
    }
}

/// The routing state of the whole network.
#[derive(Debug, Clone)]
pub struct RoutingState {
    /// Current parent per node (`None` for the sink and disconnected nodes).
    parents: Vec<Option<NodeId>>,
    /// Advertised (possibly stale) path ETX per node.
    advertised: Vec<f64>,
    sink: NodeId,
}

impl RoutingState {
    /// Initialize: every node converged on the true shortest ETX paths at
    /// time zero.
    pub fn converged(topology: &Topology, links: &LinkModel, at: SimTime) -> Self {
        let n = topology.len();
        let sink = topology.sink();
        let mut state = RoutingState {
            parents: vec![None; n],
            advertised: vec![f64::INFINITY; n],
            sink,
        };
        let costs = true_path_costs(topology, links, at);
        state.advertised.clone_from(&costs);
        for node in topology.nodes() {
            if node == sink {
                continue;
            }
            state.parents[node.index()] =
                best_parent(node, &costs, links, at).map(|(p, _)| p);
        }
        state
    }

    /// The sink.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Current parent of `node`.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parents[node.index()]
    }

    /// Advertised path ETX of `node`.
    pub fn advertised_etx(&self, node: NodeId) -> f64 {
        self.advertised[node.index()]
    }

    /// One routing-update round at time `at`: recompute true costs, then
    /// each node independently refreshes its advertisement and parent with
    /// probability `update_prob` (stale otherwise). Returns how many
    /// parents changed.
    pub fn update_round<R: Rng>(
        &mut self,
        topology: &Topology,
        links: &LinkModel,
        at: SimTime,
        update_prob: f64,
        rng: &mut R,
    ) -> usize {
        let costs = true_path_costs(topology, links, at);
        let mut changed = 0;
        for node in topology.nodes() {
            if node == self.sink {
                continue;
            }
            if rng.gen::<f64>() >= update_prob {
                continue; // stale this round
            }
            self.advertised[node.index()] = costs[node.index()];
            // Parent selection uses *advertised* (possibly stale) costs of
            // neighbors — the loop-forming ingredient.
            let new_parent = best_parent_advertised(node, &self.advertised, links, at);
            if new_parent != self.parents[node.index()] {
                self.parents[node.index()] = new_parent;
                changed += 1;
            }
        }
        changed
    }

    /// Detect nodes currently on a parent-pointer cycle (routing loop).
    pub fn nodes_in_loops(&self) -> Vec<NodeId> {
        let n = self.parents.len();
        let mut in_loop = vec![false; n];
        for start in 0..n {
            // Walk parent pointers with a visited stamp; O(n · path).
            let mut slow = start;
            let mut seen = vec![false; n];
            loop {
                seen[slow] = true;
                match self.parents[slow] {
                    None => break,
                    Some(p) => {
                        let pi = p.index();
                        if pi == self.sink.index() {
                            break;
                        }
                        if seen[pi] {
                            in_loop[pi] = true;
                            in_loop[start] = start == pi || in_loop[start];
                            // Mark the whole cycle.
                            let mut cur = pi;
                            loop {
                                in_loop[cur] = true;
                                match self.parents[cur] {
                                    Some(next) if next.index() != pi => cur = next.index(),
                                    _ => break,
                                }
                                if cur == pi {
                                    break;
                                }
                            }
                            break;
                        }
                        slow = pi;
                    }
                }
            }
        }
        (0..n)
            .filter(|&i| in_loop[i])
            .map(|i| NodeId(i as u16))
            .collect()
    }
}

/// True shortest path ETX to the sink for every node, via Dijkstra over the
/// current link qualities (edges reversed: cost from node → sink).
pub fn true_path_costs(topology: &Topology, links: &LinkModel, at: SimTime) -> Vec<f64> {
    let n = topology.len();
    let sink = topology.sink();
    let mut dist = vec![f64::INFINITY; n];
    dist[sink.index()] = 0.0;

    // Max-heap on negated cost = min-heap.
    #[derive(PartialEq)]
    struct Item(f64, usize);
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(other.1.cmp(&self.1))
        }
    }

    let mut heap = BinaryHeap::new();
    heap.push(Item(0.0, sink.index()));
    while let Some(Item(d, u)) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        let u_node = NodeId(u as u16);
        // Neighbors that can send *to* u (we relax incoming edges v → u).
        for &v in links.table().neighbors(u_node) {
            let prr = links.prr(v, u_node, at);
            let cost = link_etx(prr);
            if !cost.is_finite() {
                continue;
            }
            let nd = d + cost;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(Item(nd, v.index()));
            }
        }
    }
    dist
}

fn best_parent(
    node: NodeId,
    costs: &[f64],
    links: &LinkModel,
    at: SimTime,
) -> Option<(NodeId, f64)> {
    let mut best: Option<(NodeId, f64)> = None;
    for &nb in links.table().neighbors(node) {
        let le = link_etx(links.prr(node, nb, at));
        let total = costs[nb.index()] + le;
        if total.is_finite() && best.is_none_or(|(_, b)| total < b) {
            best = Some((nb, total));
        }
    }
    best
}

fn best_parent_advertised(
    node: NodeId,
    advertised: &[f64],
    links: &LinkModel,
    at: SimTime,
) -> Option<NodeId> {
    let mut best: Option<(NodeId, f64)> = None;
    for &nb in links.table().neighbors(node) {
        let le = link_etx(links.prr(node, nb, at));
        let total = advertised[nb.index()] + le;
        if total.is_finite() && best.is_none_or(|(_, b)| total < b) {
            best = Some((nb, total));
        }
    }
    best.map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::link::{LinkModelConfig, NoModulation};
    use netsim::topology::Layout;
    use netsim::RngFactory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, side: f64) -> (Topology, LinkModel) {
        let f = RngFactory::new(21);
        let topo = Topology::generate(n, side, Layout::JitteredGrid, &f);
        let table = LinkModel::build_table(&topo, &LinkModelConfig::default(), &f);
        (topo, LinkModel::new(table, Box::new(NoModulation)))
    }

    #[test]
    fn link_etx_inverts_prr() {
        assert_eq!(link_etx(1.0), 1.0);
        assert_eq!(link_etx(0.5), 2.0);
        assert!(link_etx(0.0).is_infinite());
    }

    #[test]
    fn sink_has_zero_cost_and_no_parent() {
        let (topo, links) = setup(64, 500.0);
        let costs = true_path_costs(&topo, &links, SimTime::ZERO);
        assert_eq!(costs[topo.sink().index()], 0.0);
        let r = RoutingState::converged(&topo, &links, SimTime::ZERO);
        assert_eq!(r.parent(topo.sink()), None);
    }

    #[test]
    fn most_nodes_get_finite_routes() {
        let (topo, links) = setup(100, 600.0);
        let costs = true_path_costs(&topo, &links, SimTime::ZERO);
        let routed = costs.iter().filter(|c| c.is_finite()).count();
        assert!(routed > 90, "only {routed}/100 nodes routed");
    }

    #[test]
    fn converged_tree_is_loop_free() {
        let (topo, links) = setup(100, 600.0);
        let r = RoutingState::converged(&topo, &links, SimTime::ZERO);
        assert!(r.nodes_in_loops().is_empty());
        // And every routed node's parent chain reaches the sink.
        for node in topo.nodes() {
            if node == topo.sink() || r.parent(node).is_none() {
                continue;
            }
            let mut cur = node;
            let mut hops = 0;
            while let Some(p) = r.parent(cur) {
                cur = p;
                hops += 1;
                assert!(hops <= topo.len(), "parent chain from {node} does not terminate");
            }
            assert_eq!(cur, topo.sink(), "chain from {node} ends at {cur}");
        }
    }

    #[test]
    fn parents_reduce_cost_monotonically() {
        let (topo, links) = setup(64, 500.0);
        let costs = true_path_costs(&topo, &links, SimTime::ZERO);
        let r = RoutingState::converged(&topo, &links, SimTime::ZERO);
        for node in topo.nodes() {
            if let Some(p) = r.parent(node) {
                assert!(
                    costs[p.index()] < costs[node.index()] + 1e-9,
                    "parent {p} of {node} should be closer to the sink"
                );
            }
        }
    }

    #[test]
    fn full_update_round_keeps_convergence() {
        let (topo, links) = setup(64, 500.0);
        let mut r = RoutingState::converged(&topo, &links, SimTime::ZERO);
        let mut rng = StdRng::seed_from_u64(3);
        // With stable links and update_prob 1, nothing should change.
        let changed = r.update_round(&topo, &links, SimTime::ZERO, 1.0, &mut rng);
        assert_eq!(changed, 0);
        assert!(r.nodes_in_loops().is_empty());
    }

    #[test]
    fn zero_update_prob_freezes_routes() {
        let (topo, links) = setup(64, 500.0);
        let mut r = RoutingState::converged(&topo, &links, SimTime::ZERO);
        let before: Vec<_> = topo.nodes().map(|n| r.parent(n)).collect();
        let mut rng = StdRng::seed_from_u64(3);
        r.update_round(&topo, &links, SimTime::ZERO, 0.0, &mut rng);
        let after: Vec<_> = topo.nodes().map(|n| r.parent(n)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn loop_detection_finds_planted_cycle() {
        let (topo, links) = setup(16, 200.0);
        let mut r = RoutingState::converged(&topo, &links, SimTime::ZERO);
        // Plant a 2-cycle between two non-sink nodes.
        let a = NodeId(3);
        let b = NodeId(4);
        r.parents[a.index()] = Some(b);
        r.parents[b.index()] = Some(a);
        let looped = r.nodes_in_loops();
        assert!(looped.contains(&a) && looped.contains(&b), "{looped:?}");
    }
}
