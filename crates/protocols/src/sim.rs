//! The event-driven network simulator.
//!
//! Drives the whole stack — application traffic, CTP routing, LPL MAC with
//! retransmissions, per-node OS behaviour, the sink's serial link and the
//! base station — over a [`netsim::Scheduler`], producing:
//!
//! * lossy per-node [`LocalLog`]s (through [`NodeLogger`]s) plus the base
//!   station's reliable log, and
//! * complete [`GroundTruth`]: every loggable event in true order, every
//!   packet's fate (delivered, or lost where and why) and true path.
//!
//! Copy accounting: a packet may briefly exist in several places (sender
//! retains its copy until acked; a receiver may already have accepted a
//! copy whose ACK was lost). A packet's *fate* is `Delivered` if any copy
//! reaches the base station; otherwise the **latest copy death** determines
//! the loss position and cause — which is also what REFILL's flow-based
//! diagnosis estimates, making truth and inference comparable.

use crate::config::SimConfig;
use crate::ctp::RoutingState;
use crate::energy::EnergyLedger;
use crate::node::{AcceptError, MacSlot, NodeState};
use crate::packet::DataPacket;
use crate::schedule::{FaultModulator, FaultSchedule};
use eventlog::clock::{ClockConfig, ClockModel};
use eventlog::event::BASE_STATION;
use eventlog::logger::{LocalLog, LogEntry, NodeLogger};
use eventlog::{Event, EventKind, GroundTruth, LossCause, PacketFate, PacketId};
use netsim::link::{LinkModel, LinkQualityTable};
use netsim::metrics::CounterSet;
use netsim::{NodeId, RngFactory, Scheduler, SimTime, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use rustc_hash::FxHashMap;

/// Everything a run produces.
#[derive(Debug)]
pub struct SimOutput {
    /// Per-node local logs (lossy at the recording layer), plus the base
    /// station's reliable log as the final element.
    pub logs: Vec<LocalLog>,
    /// Complete ground truth.
    pub truth: GroundTruth,
    /// Aggregate counters (transmissions, retries, loop rounds, …).
    pub counters: CounterSet,
    /// The clock model used for local timestamps.
    pub clocks: ClockModel,
    /// Per-node radio energy ledger.
    pub energy: EnergyLedger,
}

#[derive(Debug, Clone)]
enum Ev {
    Gen { node: NodeId },
    Serve { node: NodeId },
    Attempt { node: NodeId },
    FrameArrive { from: NodeId, to: NodeId, packet: DataPacket },
    AckArrive { node: NodeId, id: PacketId },
    RetryCheck { node: NodeId, id: PacketId, attempt: u32 },
    SerialArrive { packet: DataPacket },
    RouteUpdate,
    LogFlush,
    Reboot { node: NodeId },
}

#[derive(Debug, Default, Clone, Copy)]
struct PacketState {
    live: i32,
    delivered: Option<SimTime>,
    /// Death of the copy that progressed furthest: `(depth, at, node,
    /// cause)`, ordered lexicographically by `(depth, at)`. A sender's
    /// timeout (shallow copy) must not mask the accepted copy's later fate
    /// downstream.
    deepest_death: Option<(u8, SimTime, NodeId, LossCause)>,
}

/// The simulator.
pub struct Simulator {
    topology: Topology,
    links: LinkModel,
    faults: FaultSchedule,
    config: SimConfig,
    routing: RoutingState,
    scheduler: Scheduler<Ev>,
    nodes: Vec<NodeState>,
    loggers: Vec<NodeLogger>,
    node_rngs: Vec<StdRng>,
    route_rng: StdRng,
    bs_entries: Vec<LogEntry>,
    clocks: ClockModel,
    truth: GroundTruth,
    packets: FxHashMap<PacketId, PacketState>,
    next_seq: Vec<u32>,
    counters: CounterSet,
    energy: EnergyLedger,
}

impl Simulator {
    /// Build a simulator over a topology, its static link table, a fault
    /// schedule and the run configuration.
    pub fn new(
        topology: Topology,
        link_table: LinkQualityTable,
        faults: FaultSchedule,
        config: SimConfig,
    ) -> Self {
        config.validate().expect("invalid SimConfig");
        let factory = RngFactory::new(config.seed);
        let modulator = FaultModulator::new(&topology, &faults);
        let links = LinkModel::new(link_table, Box::new(modulator));
        let routing = RoutingState::converged(&topology, &links, SimTime::ZERO);
        let n = topology.len();
        let clocks = ClockModel::generate(n, &ClockConfig::default(), &factory);
        let nodes = (0..n)
            .map(|_| NodeState::new(config.queue_capacity, config.dup_cache_size))
            .collect();
        let loggers = (0..n)
            .map(|i| {
                NodeLogger::new(
                    NodeId(i as u16),
                    config.logger,
                    clocks.clock(NodeId(i as u16)),
                )
            })
            .collect();
        let node_rngs = (0..n).map(|i| factory.stream("node", i as u64)).collect();
        let route_rng = factory.stream("route", 0);
        Simulator {
            topology,
            links,
            faults,
            config,
            routing,
            scheduler: Scheduler::new(),
            nodes,
            loggers,
            node_rngs,
            route_rng,
            bs_entries: Vec::new(),
            clocks,
            truth: GroundTruth::default(),
            packets: FxHashMap::default(),
            next_seq: vec![0; n],
            counters: CounterSet::new(),
            energy: EnergyLedger::new(n),
        }
    }

    /// Run to completion (generation stops at `config.duration`; in-flight
    /// traffic drains) and return the outputs.
    pub fn run(mut self) -> SimOutput {
        // Seed the periodic processes.
        let n = self.topology.len();
        for i in 0..n {
            let node = NodeId(i as u16);
            if node == self.routing.sink() {
                continue;
            }
            let offset = self.jittered_interval(node);
            self.scheduler.schedule(SimTime::ZERO + offset, Ev::Gen { node });
        }
        self.scheduler
            .schedule(SimTime::ZERO + self.config.route_update_interval, Ev::RouteUpdate);
        self.scheduler
            .schedule(SimTime::ZERO + self.config.log_flush_interval, Ev::LogFlush);
        if self.config.reboot_mean_interval.is_some() {
            for i in 0..n {
                let node = NodeId(i as u16);
                if node == self.routing.sink() {
                    continue; // the sink's reboot story is its own fault process
                }
                let delay = self.next_reboot_delay(node);
                self.scheduler.schedule(SimTime::ZERO + delay, Ev::Reboot { node });
            }
        }

        while let Some((now, ev)) = self.scheduler.pop() {
            self.handle(now, ev);
        }
        self.finalize()
    }

    fn jittered_interval(&mut self, node: NodeId) -> netsim::SimDuration {
        let j = self.config.packet_jitter;
        let f = if j > 0.0 {
            1.0 + self.node_rngs[node.index()].gen_range(-j..j)
        } else {
            1.0
        };
        self.config.packet_interval.mul_f64(f)
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Gen { node } => self.on_gen(now, node),
            Ev::Serve { node } => self.on_serve(now, node),
            Ev::Attempt { node } => self.on_attempt(now, node),
            Ev::FrameArrive { from, to, packet } => self.on_frame(now, from, to, packet),
            Ev::AckArrive { node, id } => self.on_ack(now, node, id),
            Ev::RetryCheck { node, id, attempt } => self.on_retry_check(now, node, id, attempt),
            Ev::SerialArrive { packet } => self.on_serial_arrive(now, packet),
            Ev::RouteUpdate => self.on_route_update(now),
            Ev::LogFlush => self.on_log_flush(now),
            Ev::Reboot { node } => self.on_reboot(now, node),
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_gen(&mut self, now: SimTime, node: NodeId) {
        if now <= self.config.duration {
            let seq = self.next_seq[node.index()];
            self.next_seq[node.index()] += 1;
            let id = PacketId::new(node, seq);
            let packet = DataPacket::new(id);
            self.packets.insert(id, PacketState::default());
            self.counters.incr("generated");
            self.truth.visit(id, node);
            if self.config.log_origin {
                self.log(now, node, EventKind::Origin, id);
            }
            // Self-enqueue.
            match self.nodes[node.index()].accept(packet) {
                Ok(()) => {
                    self.copy_gain(id);
                    if self.config.log_enqueue {
                        self.log(now, node, EventKind::Enqueue, id);
                    }
                    self.scheduler.schedule(now, Ev::Serve { node });
                }
                Err(_) => {
                    // Own queue full at generation time.
                    self.log(now, node, EventKind::Overflow { from: node }, id);
                    self.death(id, node, LossCause::OverflowLoss, now, 0);
                    self.counters.incr("overflow_drops");
                }
            }
            // Next generation.
            let next = now + self.jittered_interval(node);
            if next <= self.config.duration {
                self.scheduler.schedule(next, Ev::Gen { node });
            }
        }
    }

    fn on_serve(&mut self, now: SimTime, node: NodeId) {
        let Some(packet) = self.nodes[node.index()].next_to_serve() else {
            return;
        };
        let id = packet.id;
        // Internal task failure: the queued packet silently dies inside the
        // node (received loss — its recv *was* logged).
        if self.node_rngs[node.index()].gen::<f64>() < self.config.p_internal_drop {
            self.copy_release(id);
            self.death(id, node, LossCause::ReceivedLoss, now, packet.thl);
            self.counters.incr("internal_drops");
            self.scheduler.schedule(now, Ev::Serve { node });
            return;
        }
        let Some(target) = self.routing.parent(node) else {
            // No route: packet dies inside the node.
            self.copy_release(id);
            self.death(id, node, LossCause::ReceivedLoss, now, packet.thl);
            self.counters.incr("no_route_drops");
            self.scheduler.schedule(now, Ev::Serve { node });
            return;
        };
        self.nodes[node.index()].mac = Some(MacSlot {
            packet,
            target,
            attempts: 0,
            acked: false,
        });
        self.scheduler.schedule(now, Ev::Attempt { node });
    }

    fn on_attempt(&mut self, now: SimTime, node: NodeId) {
        let Some(slot) = self.nodes[node.index()].mac else {
            return;
        };
        if slot.acked {
            return;
        }
        let attempts = slot.attempts + 1;
        if let Some(m) = self.nodes[node.index()].mac.as_mut() {
            m.attempts = attempts;
        }
        let id = slot.packet.id;
        let target = slot.target;
        self.log(now, node, EventKind::Trans { to: target }, id);
        self.counters.incr("transmissions");
        self.energy.charge_tx(node, &self.config.energy);
        if attempts > 1 {
            self.counters.incr("retransmissions");
        }

        let frame_ok = {
            let prr = self.links.prr(node, target, now);
            self.node_rngs[node.index()].gen::<f64>() < prr
        };
        if frame_ok {
            self.scheduler.schedule(
                now + self.config.hop_delay,
                Ev::FrameArrive {
                    from: node,
                    to: target,
                    packet: slot.packet,
                },
            );
        }
        self.scheduler.schedule(
            now + self.config.retry_backoff,
            Ev::RetryCheck {
                node,
                id,
                attempt: attempts,
            },
        );
    }

    /// Send an acknowledgement from `to` back to `from` over the reverse
    /// link (short and robust: its loss probability is the reverse PRR
    /// shrunk by `ack_fragility`).
    fn send_ack(&mut self, now: SimTime, from: NodeId, to: NodeId, id: PacketId) {
        let rev = self.links.prr(to, from, now);
        let p_ack = 1.0 - (1.0 - rev) * self.config.ack_fragility;
        if self.node_rngs[to.index()].gen::<f64>() < p_ack {
            self.scheduler.schedule(
                now + self.config.hop_delay,
                Ev::AckArrive { node: from, id },
            );
        }
    }

    fn on_frame(&mut self, now: SimTime, from: NodeId, to: NodeId, packet: DataPacket) {
        self.energy.charge_rx(to, &self.config.energy);
        let id = packet.id;
        // Hardware ACK: the PHY acknowledges on CRC pass, *before* the
        // stack gets a say — the root of the paper's acked losses.
        if !self.config.software_ack {
            self.send_ack(now, from, to, id);
        }
        if to == self.routing.sink() {
            self.on_frame_at_sink(now, from, packet);
            return;
        }
        // Stack hand-off drop: hardware acked, never reached the network
        // layer — nothing logged on the receiver. (With software ACKs the
        // sender never hears back and retries instead.)
        if self.node_rngs[to.index()].gen::<f64>() < self.config.p_prelog_drop {
            self.death(id, to, LossCause::AckedLoss, now, packet.thl.saturating_add(1));
            self.counters.incr("prelog_drops");
            return;
        }
        let fwd = packet.forwarded();
        if fwd.thl >= self.config.max_thl {
            self.death(id, to, LossCause::ReceivedLoss, now, fwd.thl);
            self.counters.incr("thl_exceeded");
            return;
        }
        if self.nodes[to.index()].is_duplicate(&fwd) {
            self.log(now, to, EventKind::Dup { from }, id);
            self.death(id, to, LossCause::DuplicateLoss, now, fwd.thl);
            self.counters.incr("duplicate_drops");
            // The packet is already held: a software ACK is still in order.
            if self.config.software_ack {
                self.send_ack(now, from, to, id);
            }
            return;
        }
        self.log(now, to, EventKind::Recv { from }, id);
        match self.nodes[to.index()].accept(fwd) {
            Ok(()) => {
                if self.config.software_ack {
                    self.send_ack(now, from, to, id);
                }
                self.copy_gain(id);
                self.truth.visit(id, to);
                if self.config.log_enqueue {
                    self.log(now, to, EventKind::Enqueue, id);
                }
                self.scheduler.schedule(now, Ev::Serve { node: to });
            }
            Err(AcceptError::QueueFull) => {
                self.log(now, to, EventKind::Overflow { from }, id);
                self.death(id, to, LossCause::OverflowLoss, now, fwd.thl);
                self.counters.incr("overflow_drops");
            }
            Err(AcceptError::Duplicate) => {
                // Raced with is_duplicate above; treat identically.
                self.log(now, to, EventKind::Dup { from }, id);
                self.death(id, to, LossCause::DuplicateLoss, now, fwd.thl);
                self.counters.incr("duplicate_drops");
            }
        }
    }

    fn on_frame_at_sink(&mut self, now: SimTime, from: NodeId, packet: DataPacket) {
        let sink = self.routing.sink();
        let id = packet.id;
        // The unstable serial wiring keeps the sink MCU busy: elevated
        // pre-log drops (acked losses at the sink — the paper's 38 %).
        if self.node_rngs[sink.index()].gen::<f64>() < self.faults.sink_prelog_drop.at(now) {
            self.death(id, sink, LossCause::AckedLoss, now, packet.thl.saturating_add(1));
            self.counters.incr("sink_prelog_drops");
            return;
        }
        let fwd = packet.forwarded();
        if self.nodes[sink.index()].is_duplicate(&fwd) {
            self.log(now, sink, EventKind::Dup { from }, id);
            self.death(id, sink, LossCause::DuplicateLoss, now, fwd.thl);
            self.counters.incr("duplicate_drops");
            if self.config.software_ack {
                self.send_ack(now, from, sink, id);
            }
            return;
        }
        self.nodes[sink.index()].note_seen(&fwd);
        self.log(now, sink, EventKind::Recv { from }, id);
        self.truth.visit(id, sink);
        if self.config.software_ack {
            self.send_ack(now, from, sink, id);
        }
        // Post-recv drop before the serial write (received loss at sink).
        if self.node_rngs[sink.index()].gen::<f64>() < self.faults.sink_predrop.at(now) {
            self.death(id, sink, LossCause::ReceivedLoss, now, fwd.thl);
            self.counters.incr("sink_predrops");
            return;
        }
        self.log(now, sink, EventKind::SerialTrans, id);
        // RS232 cable loss (received loss at sink, after serial trans).
        if self.node_rngs[sink.index()].gen::<f64>() < self.faults.serial_loss.at(now) {
            self.death(id, sink, LossCause::ReceivedLoss, now, fwd.thl);
            self.counters.incr("serial_losses");
            return;
        }
        self.copy_gain(id);
        self.scheduler
            .schedule(now + self.config.serial_delay, Ev::SerialArrive { packet: fwd });
    }

    fn on_serial_arrive(&mut self, now: SimTime, packet: DataPacket) {
        let id = packet.id;
        self.copy_release(id);
        if self.faults.in_outage(now) {
            // Server down: the packet made it over the wire into nothing.
            self.death(id, self.routing.sink(), LossCause::ServerOutage, now, packet.thl.saturating_add(1));
            self.counters.incr("outage_losses");
            return;
        }
        let event = Event::new(BASE_STATION, EventKind::BsRecv, id);
        self.truth.record(now, event);
        self.bs_entries.push(LogEntry {
            event,
            local_ts: Some(now.as_micros()),
        });
        self.truth.visit(id, BASE_STATION);
        if let Some(p) = self.packets.get_mut(&id) {
            if p.delivered.is_none() {
                p.delivered = Some(now);
            }
        }
        self.counters.incr("delivered");
    }

    fn on_ack(&mut self, now: SimTime, node: NodeId, id: PacketId) {
        let Some(slot) = self.nodes[node.index()].mac else {
            return;
        };
        if slot.packet.id != id || slot.acked {
            return;
        }
        self.log(now, node, EventKind::AckRecvd { to: slot.target }, id);
        self.nodes[node.index()].mac = None;
        self.copy_release(id);
        self.scheduler.schedule(now, Ev::Serve { node });
    }

    fn on_retry_check(&mut self, now: SimTime, node: NodeId, id: PacketId, attempt: u32) {
        let Some(slot) = self.nodes[node.index()].mac else {
            return;
        };
        if slot.packet.id != id || slot.acked || slot.attempts != attempt {
            return;
        }
        if slot.attempts >= self.config.max_retries {
            self.log(now, node, EventKind::Timeout { to: slot.target }, id);
            self.nodes[node.index()].mac = None;
            self.copy_release(id);
            self.death(id, node, LossCause::TimeoutLoss, now, slot.packet.thl);
            self.counters.incr("timeout_drops");
            self.scheduler.schedule(now, Ev::Serve { node });
        } else {
            self.scheduler.schedule(now, Ev::Attempt { node });
        }
    }

    fn on_route_update(&mut self, now: SimTime) {
        let changed = self.routing.update_round(
            &self.topology,
            &self.links,
            now,
            self.config.route_update_prob,
            &mut self.route_rng,
        );
        self.counters.add("route_changes", changed as u64);
        if !self.routing.nodes_in_loops().is_empty() {
            self.counters.incr("loop_rounds");
        }
        if now < self.config.duration {
            self.scheduler
                .schedule(now + self.config.route_update_interval, Ev::RouteUpdate);
        }
    }

    fn next_reboot_delay(&mut self, node: NodeId) -> netsim::SimDuration {
        let mean = self
            .config
            .reboot_mean_interval
            .expect("only called when reboots are enabled");
        // Uniform 0.5–1.5 × mean: jittered but bounded.
        let f = self.node_rngs[node.index()].gen_range(0.5..1.5);
        mean.mul_f64(f)
    }

    fn on_reboot(&mut self, now: SimTime, node: NodeId) {
        // Unflushed log entries are gone.
        self.loggers[node.index()].reboot();
        // Every packet the node holds dies in place.
        let held: Vec<DataPacket> = self.nodes[node.index()]
            .mac
            .iter()
            .map(|m| m.packet)
            .collect();
        for p in held {
            self.copy_release(p.id);
            self.death(p.id, node, LossCause::ReceivedLoss, now, p.thl);
        }
        self.nodes[node.index()].mac = None;
        while let Some(p) = self.nodes[node.index()].next_to_serve() {
            self.copy_release(p.id);
            self.death(p.id, node, LossCause::ReceivedLoss, now, p.thl);
        }
        self.counters.incr("reboots");
        if now < self.config.duration {
            let delay = self.next_reboot_delay(node);
            self.scheduler.schedule(now + delay, Ev::Reboot { node });
        }
    }

    fn on_log_flush(&mut self, now: SimTime) {
        for l in &mut self.loggers {
            l.flush();
        }
        if now < self.config.duration {
            self.scheduler
                .schedule(now + self.config.log_flush_interval, Ev::LogFlush);
        }
    }

    // ------------------------------------------------------------------
    // Bookkeeping
    // ------------------------------------------------------------------

    fn log(&mut self, now: SimTime, node: NodeId, kind: EventKind, id: PacketId) {
        let event = Event::new(node, kind, id);
        self.truth.record(now, event);
        self.loggers[node.index()].record(event, now, &mut self.node_rngs[node.index()]);
    }

    fn copy_gain(&mut self, id: PacketId) {
        if let Some(p) = self.packets.get_mut(&id) {
            p.live += 1;
        }
    }

    fn copy_release(&mut self, id: PacketId) {
        if let Some(p) = self.packets.get_mut(&id) {
            p.live -= 1;
        }
    }

    fn death(&mut self, id: PacketId, node: NodeId, cause: LossCause, at: SimTime, depth: u8) {
        if let Some(p) = self.packets.get_mut(&id) {
            let better = match p.deepest_death {
                None => true,
                Some((d, t, _, _)) => (depth, at) >= (d, t),
            };
            if better {
                p.deepest_death = Some((depth, at, node, cause));
            }
        }
    }

    fn finalize(mut self) -> SimOutput {
        let end = self.scheduler.now();
        // Drain: copies still sitting in queues or MAC slots die in place.
        for i in 0..self.nodes.len() {
            let node = NodeId(i as u16);
            let stuck: Vec<DataPacket> = self.nodes[i].mac.iter().map(|m| m.packet).collect();
            for p in stuck {
                self.copy_release(p.id);
                self.death(p.id, node, LossCause::ReceivedLoss, end, p.thl);
                self.counters.incr("drain_drops");
            }
            while let Some(p) = {
                self.nodes[i].mac = None;
                self.nodes[i].next_to_serve()
            } {
                self.copy_release(p.id);
                self.death(p.id, node, LossCause::ReceivedLoss, end, p.thl);
                self.counters.incr("drain_drops");
            }
        }
        // Fates.
        for (&id, st) in &self.packets {
            let fate = match st.delivered {
                Some(at) => PacketFate::Delivered { at },
                None => {
                    let (_, at, at_node, cause) = st.deepest_death.unwrap_or((
                        0,
                        end,
                        id.origin,
                        LossCause::ReceivedLoss,
                    ));
                    PacketFate::Lost { at_node, cause, at }
                }
            };
            self.truth.set_fate(id, fate);
        }
        // Logs.
        self.energy
            .charge_baseline(end.saturating_since(SimTime::ZERO), &self.config.energy);
        let mut logs: Vec<LocalLog> = self.loggers.into_iter().map(|l| l.into_log()).collect();
        logs.push(LocalLog {
            node: BASE_STATION,
            entries: self.bs_entries,
        });
        SimOutput {
            logs,
            truth: self.truth,
            counters: self.counters,
            clocks: self.clocks,
            energy: self.energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use eventlog::logger::LoggerConfig;
    use netsim::link::LinkModelConfig;
    use netsim::topology::Layout;

    fn build(
        n: usize,
        side: f64,
        seed: u64,
        faults: FaultSchedule,
        tweak: impl FnOnce(&mut SimConfig),
    ) -> SimOutput {
        let factory = RngFactory::new(seed);
        let topo = Topology::generate(n, side, Layout::JitteredGrid, &factory);
        let table = LinkModel::build_table(&topo, &LinkModelConfig::default(), &factory);
        let mut config = SimConfig {
            seed,
            duration: SimTime::from_secs(120),
            packet_interval: netsim::SimDuration::from_secs(15),
            logger: LoggerConfig::lossless(),
            ..SimConfig::default()
        };
        tweak(&mut config);
        Simulator::new(topo, table, faults, config).run()
    }

    fn clean_config(c: &mut SimConfig) {
        c.p_prelog_drop = 0.0;
        c.p_internal_drop = 0.0;
    }

    #[test]
    fn packets_flow_to_base_station() {
        let out = build(25, 250.0, 7, FaultSchedule::default(), clean_config);
        assert!(out.counters.get("generated") > 50);
        let ratio = out.truth.delivery_ratio();
        assert!(
            ratio > 0.9,
            "delivery ratio too low on a healthy network: {ratio}"
        );
    }

    #[test]
    fn truth_events_are_time_ordered() {
        let out = build(16, 200.0, 3, FaultSchedule::default(), clean_config);
        assert!(out
            .truth
            .events
            .windows(2)
            .all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn runs_are_deterministic() {
        let a = build(16, 200.0, 11, FaultSchedule::default(), |_| {});
        let b = build(16, 200.0, 11, FaultSchedule::default(), |_| {});
        assert_eq!(a.truth.events.len(), b.truth.events.len());
        for (x, y) in a.truth.events.iter().zip(&b.truth.events) {
            assert_eq!(x, y);
        }
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn different_seeds_differ() {
        let a = build(16, 200.0, 1, FaultSchedule::default(), |_| {});
        let b = build(16, 200.0, 2, FaultSchedule::default(), |_| {});
        assert_ne!(a.truth.events, b.truth.events);
    }

    #[test]
    fn sink_prelog_faults_cause_acked_losses() {
        let faults = FaultSchedule {
            sink_prelog_drop: Schedule::constant(0.5),
            ..FaultSchedule::default()
        };
        let out = build(16, 200.0, 5, faults, clean_config);
        let by_cause = out.truth.losses_by_cause();
        assert!(
            by_cause.get(&LossCause::AckedLoss).copied().unwrap_or(0) > 0,
            "expected acked losses at the sink: {by_cause:?}"
        );
    }

    #[test]
    fn serial_faults_cause_received_losses_at_sink() {
        let faults = FaultSchedule {
            serial_loss: Schedule::constant(0.6),
            ..FaultSchedule::default()
        };
        let out = build(16, 200.0, 5, faults, clean_config);
        let sink = NodeId(0);
        let sink_received = out
            .truth
            .fates
            .values()
            .filter(|f| {
                matches!(f, PacketFate::Lost { at_node, cause, .. }
                    if *at_node == sink && *cause == LossCause::ReceivedLoss)
            })
            .count();
        assert!(sink_received > 0);
        // And the sink logged serial trans for them.
        assert!(out
            .truth
            .events
            .iter()
            .any(|te| matches!(te.event.kind, EventKind::SerialTrans)));
    }

    #[test]
    fn outages_cause_server_outage_losses() {
        let faults = FaultSchedule {
            outages: vec![(SimTime::from_secs(0), SimTime::from_secs(400))],
            ..FaultSchedule::default()
        };
        let out = build(16, 200.0, 5, faults, clean_config);
        let by_cause = out.truth.losses_by_cause();
        assert!(by_cause.get(&LossCause::ServerOutage).copied().unwrap_or(0) > 0);
        assert_eq!(out.counters.get("delivered"), 0, "server was down all run");
    }

    #[test]
    fn jammed_network_times_out() {
        // Heavy interference: links barely work (but still exist, so routes
        // form), and the retry budget is tiny.
        let faults = FaultSchedule {
            weather: Schedule::constant(0.05),
            ..FaultSchedule::default()
        };
        let out = build(9, 150.0, 5, faults, |c| {
            clean_config(c);
            c.max_retries = 2;
        });
        let by_cause = out.truth.losses_by_cause();
        assert!(
            by_cause.get(&LossCause::TimeoutLoss).copied().unwrap_or(0) > 0,
            "expected timeout losses: {by_cause:?}"
        );
        assert!(out.counters.get("retransmissions") > 0);
        assert!(
            out.truth.delivery_ratio() < 0.5,
            "a jammed network should lose most packets"
        );
    }

    #[test]
    fn internal_drops_cause_received_losses() {
        let out = build(16, 200.0, 5, FaultSchedule::default(), |c| {
            c.p_prelog_drop = 0.0;
            c.p_internal_drop = 0.5;
        });
        let by_cause = out.truth.losses_by_cause();
        assert!(by_cause.get(&LossCause::ReceivedLoss).copied().unwrap_or(0) > 0);
        assert!(out.counters.get("internal_drops") > 0);
    }

    #[test]
    fn overflow_under_pressure() {
        let out = build(25, 250.0, 5, FaultSchedule::default(), |c| {
            clean_config(c);
            c.queue_capacity = 1;
            c.packet_interval = netsim::SimDuration::from_millis(500);
        });
        assert!(out.counters.get("overflow_drops") > 0);
        let by_cause = out.truth.losses_by_cause();
        assert!(by_cause.get(&LossCause::OverflowLoss).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn reboots_truncate_logs_and_drop_held_packets() {
        let with_reboots = build(16, 200.0, 5, FaultSchedule::default(), |c| {
            clean_config(c);
            c.reboot_mean_interval = Some(netsim::SimDuration::from_secs(20));
            c.log_flush_interval = netsim::SimDuration::from_secs(60);
        });
        assert!(with_reboots.counters.get("reboots") > 0);
        let without = build(16, 200.0, 5, FaultSchedule::default(), |c| {
            clean_config(c);
            c.log_flush_interval = netsim::SimDuration::from_secs(60);
        });
        // Rebooting nodes lose log entries relative to the same run without
        // reboots (same seed, infrequent flushes).
        let logged = |o: &SimOutput| o.logs.iter().map(|l| l.len()).sum::<usize>();
        assert!(
            logged(&with_reboots) < logged(&without),
            "reboots should truncate logs: {} vs {}",
            logged(&with_reboots),
            logged(&without)
        );
    }

    #[test]
    fn software_acks_eliminate_acked_losses() {
        // §V-D.5: with software ACKs, stack drops are retried instead of
        // becoming acked losses.
        let faults = FaultSchedule {
            sink_prelog_drop: Schedule::constant(0.3),
            ..FaultSchedule::default()
        };
        let hw = build(16, 200.0, 5, faults.clone(), |c| {
            c.p_internal_drop = 0.0;
        });
        let sw = build(16, 200.0, 5, faults, |c| {
            c.p_internal_drop = 0.0;
            c.software_ack = true;
        });
        let acked = |o: &SimOutput| {
            o.truth
                .losses_by_cause()
                .get(&LossCause::AckedLoss)
                .copied()
                .unwrap_or(0)
        };
        assert!(acked(&hw) > 0, "hardware acks produce acked losses");
        assert_eq!(acked(&sw), 0, "software acks retry stack drops instead");
        // The price: more transmissions for the same traffic.
        assert!(
            sw.counters.get("transmissions") > hw.counters.get("transmissions"),
            "sw {} vs hw {}",
            sw.counters.get("transmissions"),
            hw.counters.get("transmissions")
        );
        // And better delivery.
        assert!(sw.truth.delivery_ratio() >= hw.truth.delivery_ratio());
    }

    #[test]
    fn energy_concentrates_near_the_sink() {
        let out = build(25, 250.0, 7, FaultSchedule::default(), clean_config);
        // Everyone pays the same baseline.
        let base0 = out.energy.baseline_mj[1];
        assert!(out.energy.baseline_mj.iter().all(|&b| (b - base0).abs() < 1e-9));
        // The busiest forwarders burn the most TX energy, and the ranking's
        // top node beats the median by a wide margin (funnel effect).
        let hot = out.energy.hotspots();
        let median = hot[hot.len() / 2].1;
        assert!(
            hot[0].1 > median * 1.2,
            "hotspot {} vs median {median}",
            hot[0].1
        );
        assert!(out.energy.network_total_mj() > 0.0);
    }

    #[test]
    fn bs_log_is_last_and_reliable() {
        let out = build(9, 150.0, 5, FaultSchedule::default(), clean_config);
        let bs = out.logs.last().unwrap();
        assert_eq!(bs.node, BASE_STATION);
        assert_eq!(bs.len() as u64, out.counters.get("delivered"));
        assert!(bs
            .events()
            .all(|e| matches!(e.kind, EventKind::BsRecv)));
    }

    #[test]
    fn paths_start_at_origin_and_end_at_bs_when_delivered() {
        let out = build(16, 200.0, 5, FaultSchedule::default(), clean_config);
        for (id, fate) in &out.truth.fates {
            let path = &out.truth.paths[id];
            assert_eq!(path[0], id.origin, "path starts at origin");
            if fate.delivered() {
                assert_eq!(*path.last().unwrap(), BASE_STATION);
            }
        }
    }

    #[test]
    fn fates_cover_every_generated_packet() {
        let out = build(16, 200.0, 9, FaultSchedule::default(), |_| {});
        assert_eq!(out.truth.packet_count() as u64, out.counters.get("generated"));
        // live accounting: every packet is either delivered or has a death.
        for fate in out.truth.fates.values() {
            match fate {
                PacketFate::Delivered { .. } | PacketFate::Lost { .. } => {}
            }
        }
    }
}
