//! Simulation configuration.

use crate::energy::EnergyConfig;
use eventlog::logger::LoggerConfig;
use netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// All knobs of one simulation run (faults live in
/// [`crate::schedule::FaultSchedule`], the deployment in
/// [`netsim::Topology`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed for every random stream.
    pub seed: u64,
    /// Packet generation stops at this time; the run then drains.
    pub duration: SimTime,
    /// Application sending period per node.
    pub packet_interval: SimDuration,
    /// Uniform jitter fraction applied to each interval (0.1 = ±10 %).
    pub packet_jitter: f64,
    /// MAC retransmission budget (CitySee: up to 30).
    pub max_retries: u32,
    /// Backoff between attempts (must exceed the ack round trip).
    pub retry_backoff: SimDuration,
    /// One-hop frame latency (includes LPL wakeup on average).
    pub hop_delay: SimDuration,
    /// Forwarding-queue capacity.
    pub queue_capacity: usize,
    /// Link-layer duplicate-cache entries.
    pub dup_cache_size: usize,
    /// THL bound: packets exceeding it are dropped (loop backstop).
    pub max_thl: u8,
    /// ACK delivery probability is the reverse-link PRR raised toward 1 by
    /// this factor (hardware ACKs are short and robust): `p_ack = 1 - (1 -
    /// prr) * ack_fragility`.
    pub ack_fragility: f64,
    /// Probability an ordinary node's stack drops a hardware-acked packet
    /// before the network layer logs it (acked loss).
    pub p_prelog_drop: f64,
    /// Probability a queued packet dies inside the node before service
    /// (received loss).
    pub p_internal_drop: f64,
    /// Serial transfer latency sink → base station.
    pub serial_delay: SimDuration,
    /// Routing-update round period.
    pub route_update_interval: SimDuration,
    /// Per-node probability of refreshing routes in a round (staleness).
    pub route_update_prob: f64,
    /// Local logger behaviour.
    pub logger: LoggerConfig,
    /// Logger flush period.
    pub log_flush_interval: SimDuration,
    /// Mean time between node reboots (`None` disables them). A reboot
    /// loses the node's unflushed log entries and every packet it holds.
    pub reboot_mean_interval: Option<SimDuration>,
    /// LPL radio energy model parameters.
    pub energy: EnergyConfig,
    /// Acknowledge at the software layer instead of the PHY (the §V-D.5
    /// alternative): the ACK is sent only after the upper layer accepted
    /// the packet, so stack drops are retried instead of silently lost —
    /// at the cost of extra retransmissions when the stack is busy.
    pub software_ack: bool,
    /// Whether the application logs `origin` events.
    pub log_origin: bool,
    /// Whether forwarders log `enqueue` events.
    pub log_enqueue: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            duration: SimTime::from_secs(600),
            packet_interval: SimDuration::from_secs(30),
            packet_jitter: 0.2,
            max_retries: 30,
            retry_backoff: SimDuration::from_millis(60),
            hop_delay: SimDuration::from_millis(15),
            queue_capacity: 12,
            dup_cache_size: 4,
            max_thl: 32,
            ack_fragility: 0.08,
            p_prelog_drop: 0.002,
            p_internal_drop: 0.004,
            serial_delay: SimDuration::from_millis(30),
            route_update_interval: SimDuration::from_secs(20),
            route_update_prob: 0.7,
            logger: LoggerConfig::default(),
            log_flush_interval: SimDuration::from_secs(5),
            reboot_mean_interval: None,
            energy: EnergyConfig::default(),
            software_ack: false,
            log_origin: true,
            log_enqueue: false,
        }
    }
}

impl SimConfig {
    /// Sanity-check invariants the simulator relies on.
    pub fn validate(&self) -> Result<(), String> {
        if self.retry_backoff.as_micros() <= 2 * self.hop_delay.as_micros() {
            return Err(format!(
                "retry_backoff ({}) must exceed the ack round trip (2 × {})",
                self.retry_backoff, self.hop_delay
            ));
        }
        for (name, p) in [
            ("packet_jitter", self.packet_jitter),
            ("ack_fragility", self.ack_fragility),
            ("p_prelog_drop", self.p_prelog_drop),
            ("p_internal_drop", self.p_internal_drop),
            ("route_update_prob", self.route_update_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SimConfig::default().validate(), Ok(()));
    }

    #[test]
    fn backoff_must_exceed_rtt() {
        let cfg = SimConfig {
            retry_backoff: SimDuration::from_millis(10),
            hop_delay: SimDuration::from_millis(15),
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn probabilities_validated() {
        let cfg = SimConfig {
            p_prelog_drop: 1.5,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_queue_rejected() {
        let cfg = SimConfig {
            queue_capacity: 0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
