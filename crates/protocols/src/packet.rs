//! Frames and wire encoding.
//!
//! The PHY layer of Section V-A.1: a length-prefixed frame carrying a MAC
//! header (sender, receiver, DSN), the CTP data header (origin, seqno,
//! THL), a payload, and a CRC-16 the receiver checks before hardware-acking.
//! The simulator mostly passes structs around, but the wire codec is real —
//! it is what a deployment would put on air, and the PHY tests exercise
//! corruption → CRC rejection, the silent-discard path of the paper.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use eventlog::PacketId;
use netsim::NodeId;
use serde::{Deserialize, Serialize};

/// A CTP data packet as it travels hop to hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPacket {
    /// Global identity (origin + seqno).
    pub id: PacketId,
    /// Time-has-lived: incremented at each accepted hop. CTP uses THL in
    /// its duplicate signature; we additionally bound it to guarantee loop
    /// termination.
    pub thl: u8,
}

impl DataPacket {
    /// A freshly generated packet.
    pub fn new(id: PacketId) -> Self {
        DataPacket { id, thl: 0 }
    }

    /// The copy a forwarder re-sends (THL bumped).
    pub fn forwarded(self) -> Self {
        DataPacket {
            id: self.id,
            thl: self.thl.saturating_add(1),
        }
    }
}

/// A routing beacon advertising a node's path ETX (scaled ×128 like CTP's
/// fixed-point costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Beacon {
    /// Advertising node.
    pub from: NodeId,
    /// Advertised path ETX ×128 (`u16::MAX` = no route).
    pub path_etx_x128: u16,
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// MAC sender.
    pub src: NodeId,
    /// MAC receiver.
    pub dst: NodeId,
    /// Data sequence number (link-layer).
    pub dsn: u8,
    /// The data packet.
    pub packet: DataPacket,
    /// Application payload bytes.
    pub payload: Bytes,
}

/// Errors from [`decode_frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a minimal frame.
    Truncated,
    /// Length prefix disagrees with the buffer.
    BadLength,
    /// CRC check failed — the PHY silently discards such frames.
    BadCrc,
}

/// CRC-16/CCITT-FALSE, the 802.15.4 FCS polynomial.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc ^= u16::from(b) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

const HEADER_LEN: usize = 1 + 2 + 2 + 1 + 2 + 4 + 1; // len, src, dst, dsn, origin, seqno, thl
const CRC_LEN: usize = 2;

/// Encode a frame: `len | src | dst | dsn | origin | seqno | thl | payload | crc`.
pub fn encode_frame(frame: &Frame) -> Bytes {
    let body_len = HEADER_LEN - 1 + frame.payload.len() + CRC_LEN;
    assert!(body_len <= u8::MAX as usize, "frame exceeds 802.15.4 MTU-ish bound");
    let mut buf = BytesMut::with_capacity(1 + body_len);
    buf.put_u8(body_len as u8);
    buf.put_u16(frame.src.0);
    buf.put_u16(frame.dst.0);
    buf.put_u8(frame.dsn);
    buf.put_u16(frame.packet.id.origin.0);
    buf.put_u32(frame.packet.id.seqno);
    buf.put_u8(frame.packet.thl);
    buf.put_slice(&frame.payload);
    let crc = crc16(&buf[1..]);
    buf.put_u16(crc);
    buf.freeze()
}

/// Decode and CRC-check a frame.
pub fn decode_frame(mut data: &[u8]) -> Result<Frame, FrameError> {
    if data.len() < HEADER_LEN + CRC_LEN {
        return Err(FrameError::Truncated);
    }
    let declared = data[0] as usize;
    if declared != data.len() - 1 {
        return Err(FrameError::BadLength);
    }
    let crc_expect = u16::from_be_bytes([data[data.len() - 2], data[data.len() - 1]]);
    if crc16(&data[1..data.len() - 2]) != crc_expect {
        return Err(FrameError::BadCrc);
    }
    data.advance(1);
    let src = NodeId(data.get_u16());
    let dst = NodeId(data.get_u16());
    let dsn = data.get_u8();
    let origin = NodeId(data.get_u16());
    let seqno = data.get_u32();
    let thl = data.get_u8();
    let payload = Bytes::copy_from_slice(&data[..data.len() - CRC_LEN]);
    Ok(Frame {
        src,
        dst,
        dsn,
        packet: DataPacket {
            id: PacketId::new(origin, seqno),
            thl,
        },
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame {
            src: NodeId(12),
            dst: NodeId(7),
            dsn: 42,
            packet: DataPacket {
                id: PacketId::new(NodeId(12), 1234),
                thl: 3,
            },
            payload: Bytes::from_static(b"co2=417ppm"),
        }
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let wire = encode_frame(&f);
        let back = decode_frame(&wire).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let mut f = sample();
        f.payload = Bytes::new();
        let back = decode_frame(&encode_frame(&f)).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn corruption_fails_crc() {
        let f = sample();
        let wire = encode_frame(&f);
        for i in 1..wire.len() {
            let mut bad = wire.to_vec();
            bad[i] ^= 0x40;
            assert_eq!(
                decode_frame(&bad),
                Err(FrameError::BadCrc),
                "flip at {i} must fail CRC"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let wire = encode_frame(&sample());
        assert_eq!(decode_frame(&wire[..4]), Err(FrameError::Truncated));
        // Cutting the tail breaks the length prefix first.
        assert_eq!(
            decode_frame(&wire[..wire.len() - 1]),
            Err(FrameError::BadLength)
        );
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn thl_bumps_on_forward() {
        let p = DataPacket::new(PacketId::new(NodeId(1), 0));
        assert_eq!(p.thl, 0);
        assert_eq!(p.forwarded().thl, 1);
        let mut q = p;
        q.thl = u8::MAX;
        assert_eq!(q.forwarded().thl, u8::MAX, "saturates");
    }

    #[test]
    fn ber_channel_matches_link_model_prediction() {
        // Push frames through a random bit-error channel and check that the
        // CRC-rejection rate matches netsim's PRR = (1-BER)^bits identity —
        // the contract between the byte-level PHY and the statistical link
        // model the simulator uses.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let frame = sample();
        let wire = encode_frame(&frame);
        let ber = 2e-3;
        let trials = 4000;
        let mut accepted = 0;
        for _ in 0..trials {
            let mut noisy = wire.to_vec();
            // The length byte is the PHY's own; corrupt payload + headers + CRC.
            for byte in noisy.iter_mut().skip(1) {
                for bit in 0..8 {
                    if rng.gen::<f64>() < ber {
                        *byte ^= 1 << bit;
                    }
                }
            }
            if decode_frame(&noisy).is_ok() {
                accepted += 1;
            }
        }
        let measured_prr = accepted as f64 / trials as f64;
        let predicted = netsim::link::prr_from_ber(ber, wire.len() - 1);
        assert!(
            (measured_prr - predicted).abs() < 0.04,
            "measured {measured_prr:.3} vs predicted {predicted:.3}"
        );
    }

    #[test]
    fn beacon_cost_scale() {
        let b = Beacon {
            from: NodeId(3),
            path_etx_x128: 3 * 128,
        };
        assert_eq!(b.path_etx_x128 / 128, 3);
    }
}
