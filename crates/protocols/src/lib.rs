//! # protocols — the simulated CitySee network stack
//!
//! The substrate standing in for the paper's 1,200-node deployment: an
//! event-driven simulation of the stack described in Section V-A —
//!
//! * **PHY** ([`packet`]): 802.15.4-style frames with length prefix and
//!   CRC-16, hardware acknowledgements on CRC pass.
//! * **MAC** ([`config`], [`sim`]): LPL-flavoured unicast with
//!   retransmission until ACK or a retry budget (CitySee used up to 30).
//! * **Routing** ([`ctp`]): CTP — ETX-minimizing parent selection over
//!   beaconed path costs; *stale* advertisements under churn produce the
//!   transient routing loops behind the paper's duplicate losses.
//! * **Node OS model** ([`node`]): bounded forwarding queue (overflow
//!   losses), link-layer duplicate cache and in-queue duplicate check,
//!   stack hand-off drops (acked losses), internal task failures (received
//!   losses).
//! * **Sink & base station** ([`schedule`], [`sim`]): the RS232 serial hop
//!   with its fault process (the unstable cable fixed on day 23) and the
//!   base-station server outage schedule.
//!
//! The simulator emits exactly the event vocabulary of the `eventlog`
//! crate — through lossy per-node loggers — plus complete ground truth
//! (true event order, per-packet fates and paths) for scoring.

pub mod config;
pub mod ctp;
pub mod energy;
pub mod node;
pub mod packet;
pub mod schedule;
pub mod sim;

pub use config::SimConfig;
pub use schedule::{FaultSchedule, Schedule};
pub use sim::{SimOutput, Simulator};
