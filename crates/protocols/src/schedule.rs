//! Time-varying fault processes.
//!
//! Everything that made CitySee's losses non-stationary is expressed as a
//! piecewise-constant [`Schedule`] over simulation time, bundled into a
//! [`FaultSchedule`]:
//!
//! * base-station **server outages** (22.6 % of the paper's losses),
//! * the sink's **pre-log stack drop** probability — the unstable RS232
//!   wiring kept the MCU busy, dropping hardware-acked packets before the
//!   network layer logged them (the paper's dominant *acked* losses),
//! * the sink's **serial transmission loss** probability (received losses
//!   on the sink), both repaired on day 23,
//! * a global **weather factor** on link quality (snow on days 9–10), and
//! * localized **interference bursts** degrading a region's links for a
//!   window (the bursty timeout/duplicate ellipses of Figure 5).

use netsim::link::QualityModulator;
use netsim::{NodeId, Position, SimTime, Topology};
use serde::{Deserialize, Serialize};

/// A piecewise-constant function of simulation time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule<T> {
    /// `(start, value)` pairs sorted by start; the value holds until the
    /// next start.
    steps: Vec<(SimTime, T)>,
    default: T,
}

impl<T: Copy> Schedule<T> {
    /// A schedule that is `value` forever.
    pub fn constant(value: T) -> Self {
        Schedule {
            steps: Vec::new(),
            default: value,
        }
    }

    /// Build from `(start, value)` steps (sorted by start) and a default
    /// for times before the first step.
    pub fn from_steps(default: T, mut steps: Vec<(SimTime, T)>) -> Self {
        steps.sort_by_key(|(t, _)| *t);
        Schedule { steps, default }
    }

    /// The value at time `t`.
    pub fn at(&self, t: SimTime) -> T {
        let mut v = self.default;
        for &(start, val) in &self.steps {
            if start <= t {
                v = val;
            } else {
                break;
            }
        }
        v
    }
}

/// A localized interference burst: links touching the region are degraded
/// by `factor` during the window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceBurst {
    /// Region centre.
    pub center: Position,
    /// Region radius in metres.
    pub radius_m: f64,
    /// Window start.
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Multiplier applied to affected links' PRR (0 = jammed).
    pub factor: f64,
}

impl InterferenceBurst {
    /// Whether the burst affects a link endpoint at `p` at time `t`.
    pub fn affects(&self, p: &Position, t: SimTime) -> bool {
        t >= self.start && t < self.end && self.center.distance(p) <= self.radius_m
    }
}

/// The full fault configuration of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Base-station downtime windows `[start, end)`.
    pub outages: Vec<(SimTime, SimTime)>,
    /// Sink pre-log stack-drop probability over time.
    pub sink_prelog_drop: Schedule<f64>,
    /// Sink post-recv, pre-serial drop probability over time.
    pub sink_predrop: Schedule<f64>,
    /// Serial (RS232) per-packet loss probability over time.
    pub serial_loss: Schedule<f64>,
    /// Global link-quality multiplier over time (weather).
    pub weather: Schedule<f64>,
    /// Localized interference bursts.
    pub bursts: Vec<InterferenceBurst>,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule {
            outages: Vec::new(),
            sink_prelog_drop: Schedule::constant(0.0),
            sink_predrop: Schedule::constant(0.0),
            serial_loss: Schedule::constant(0.0),
            weather: Schedule::constant(1.0),
            bursts: Vec::new(),
        }
    }
}

impl FaultSchedule {
    /// Is the base station down at `t`?
    pub fn in_outage(&self, t: SimTime) -> bool {
        self.outages.iter().any(|&(s, e)| t >= s && t < e)
    }
}

/// A [`QualityModulator`] combining weather and interference bursts against
/// a topology's node positions.
pub struct FaultModulator {
    positions: Vec<Position>,
    weather: Schedule<f64>,
    bursts: Vec<InterferenceBurst>,
}

impl FaultModulator {
    /// Build from a topology and schedule.
    pub fn new(topology: &Topology, faults: &FaultSchedule) -> Self {
        FaultModulator {
            positions: topology.nodes().map(|n| topology.position(n)).collect(),
            weather: faults.weather.clone(),
            bursts: faults.bursts.clone(),
        }
    }
}

impl QualityModulator for FaultModulator {
    fn factor(&self, from: NodeId, to: NodeId, at: SimTime) -> f64 {
        let mut f = self.weather.at(at);
        for b in &self.bursts {
            let hits = b.affects(&self.positions[from.index()], at)
                || b.affects(&self.positions[to.index()], at);
            if hits {
                f *= b.factor;
            }
        }
        f.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::Layout;
    use netsim::RngFactory;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant_schedule() {
        let s = Schedule::constant(0.25);
        assert_eq!(s.at(SimTime::ZERO), 0.25);
        assert_eq!(s.at(t(1_000_000)), 0.25);
    }

    #[test]
    fn stepped_schedule() {
        let s = Schedule::from_steps(0.5, vec![(t(10), 0.9), (t(20), 0.1)]);
        assert_eq!(s.at(t(0)), 0.5);
        assert_eq!(s.at(t(10)), 0.9);
        assert_eq!(s.at(t(15)), 0.9);
        assert_eq!(s.at(t(20)), 0.1);
        assert_eq!(s.at(t(99)), 0.1);
    }

    #[test]
    fn steps_sort_on_build() {
        let s = Schedule::from_steps(0, vec![(t(20), 2), (t(10), 1)]);
        assert_eq!(s.at(t(12)), 1);
        assert_eq!(s.at(t(25)), 2);
    }

    #[test]
    fn outage_windows() {
        let f = FaultSchedule {
            outages: vec![(t(5), t(10)), (t(20), t(21))],
            ..FaultSchedule::default()
        };
        assert!(!f.in_outage(t(4)));
        assert!(f.in_outage(t(5)));
        assert!(f.in_outage(t(9)));
        assert!(!f.in_outage(t(10)));
        assert!(f.in_outage(t(20)));
    }

    #[test]
    fn burst_affects_region_and_window() {
        let b = InterferenceBurst {
            center: Position { x: 0.0, y: 0.0 },
            radius_m: 50.0,
            start: t(10),
            end: t(20),
            factor: 0.2,
        };
        let inside = Position { x: 30.0, y: 0.0 };
        let outside = Position { x: 100.0, y: 0.0 };
        assert!(b.affects(&inside, t(15)));
        assert!(!b.affects(&inside, t(5)));
        assert!(!b.affects(&inside, t(20)));
        assert!(!b.affects(&outside, t(15)));
    }

    #[test]
    fn modulator_combines_weather_and_bursts() {
        let factory = RngFactory::new(1);
        let topo = Topology::generate(4, 100.0, Layout::Chain, &factory);
        let faults = FaultSchedule {
            weather: Schedule::from_steps(1.0, vec![(t(10), 0.5)]),
            bursts: vec![InterferenceBurst {
                center: topo.position(NodeId(0)),
                radius_m: 10.0,
                start: t(10),
                end: t(20),
                factor: 0.4,
            }],
            ..FaultSchedule::default()
        };
        let m = FaultModulator::new(&topo, &faults);
        // Before anything: clean.
        assert_eq!(m.factor(NodeId(0), NodeId(1), t(0)), 1.0);
        // Weather only (link far from burst).
        assert!((m.factor(NodeId(2), NodeId(3), t(15)) - 0.5).abs() < 1e-12);
        // Weather × burst at node 0.
        assert!((m.factor(NodeId(0), NodeId(1), t(15)) - 0.2).abs() < 1e-12);
    }
}
