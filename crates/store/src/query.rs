//! Predicate evaluation with segment-level pushdown.
//!
//! A [`Query`] is a conjunction of optional predicates. Each predicate
//! applies only to the row types it is meaningful for; setting a predicate
//! *excludes* the other row type entirely, so results are never a mix of
//! "events filtered by X" and "reports that ignored X":
//!
//! | predicate       | event rows                   | report rows                 |
//! |-----------------|------------------------------|-----------------------------|
//! | `origin`        | packet origin matches        | packet origin matches       |
//! | `seqno`         | packet seqno in range        | packet seqno in range       |
//! | `ts`            | real local timestamp in range| **excluded**                |
//! | `cause`         | **excluded**                 | diagnosed loss cause matches|
//! | `disposition`   | **excluded**                 | some flow entry has origin  |
//!
//! Pushdown happens before any file is touched: the manifest's per-segment
//! min/max ranges ([`crate::SegmentStats`]) are checked against the
//! predicate, and segments that cannot contain a match are skipped.
//! [`QueryStats`] reports how much work pushdown saved.

use crate::row::ReportRow;
use crate::segment::Block;
use crate::store::SegmentStore;
use crate::StoreError;
use eventlog::{PackedEvent, TS_NONE};
use netsim::NodeId;
use refill::provenance::EntryOrigin;
use refill::DiagnosedCause;
use refill_telemetry::{Stage, StageTimer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A conjunction of optional predicates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Query {
    /// Packet origin node.
    pub origin: Option<NodeId>,
    /// Inclusive packet-seqno range.
    pub seqno: Option<(u32, u32)>,
    /// Inclusive local-timestamp range (event rows only; rows without a
    /// real timestamp never match).
    pub ts: Option<(u64, u64)>,
    /// Diagnosed loss cause (report rows only; requires a sidecar).
    pub cause: Option<DiagnosedCause>,
    /// Flow-entry disposition (report rows only): matches reports whose
    /// rehydrated flow contains at least one entry with this origin.
    pub disposition: Option<EntryOrigin>,
}

/// How much scanning a query did (and skipped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Segments in the store.
    pub segments_total: usize,
    /// Segments actually read.
    pub segments_scanned: usize,
    /// Segments pushdown skipped without touching the file.
    pub segments_skipped: usize,
    /// Event rows examined.
    pub event_rows_scanned: u64,
    /// Event rows matched.
    pub event_rows_matched: u64,
    /// Report rows examined.
    pub report_rows_scanned: u64,
    /// Report rows matched.
    pub report_rows_matched: u64,
}

/// A query's result set.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Matching event rows, in store order.
    pub events: Vec<(PackedEvent, u64)>,
    /// Matching report rows, in store order (duplicates kept — callers
    /// wanting the converged view dedup by packet, last wins).
    pub reports: Vec<ReportRow>,
    /// Scan accounting.
    pub stats: QueryStats,
}

impl Query {
    fn wants_events(&self) -> bool {
        self.cause.is_none() && self.disposition.is_none()
    }

    fn wants_reports(&self) -> bool {
        self.ts.is_none()
    }

    fn matches_packet(&self, packet: eventlog::PacketId) -> bool {
        if let Some(origin) = self.origin {
            if packet.origin != origin {
                return false;
            }
        }
        if let Some((lo, hi)) = self.seqno {
            if packet.seqno < lo || packet.seqno > hi {
                return false;
            }
        }
        true
    }

    fn matches_event(&self, rec: PackedEvent, ts: u64) -> bool {
        if !self.matches_packet(rec.packet()) {
            return false;
        }
        if let Some((lo, hi)) = self.ts {
            if ts == TS_NONE || ts < lo || ts > hi {
                return false;
            }
        }
        true
    }

    fn matches_report(&self, row: &ReportRow) -> bool {
        if !self.matches_packet(row.packet) {
            return false;
        }
        if let Some(cause) = self.cause {
            let diagnosed = row
                .sidecar
                .as_ref()
                .and_then(|s| s.diagnosis.cause);
            if diagnosed != Some(cause) {
                return false;
            }
        }
        if let Some(disposition) = self.disposition {
            if !row.report().origins.contains(&disposition) {
                return false;
            }
        }
        true
    }
}

impl SegmentStore {
    /// Evaluate `query` over the store.
    pub fn query(&self, query: &Query) -> Result<QueryOutput, StoreError> {
        let recorder = Arc::clone(self.recorder());
        let _span = StageTimer::start(&*recorder, Stage::StoreQuery);
        let mut out = QueryOutput {
            stats: QueryStats {
                segments_total: self.segments().len(),
                ..QueryStats::default()
            },
            ..QueryOutput::default()
        };
        for meta in self.segments() {
            let admits = |check_ts: bool| {
                if let Some(origin) = query.origin {
                    if !meta.stats.admits_origin(origin.0) {
                        return false;
                    }
                }
                if let Some((lo, hi)) = query.seqno {
                    if !meta.stats.admits_seqno(lo, hi) {
                        return false;
                    }
                }
                if check_ts {
                    if let Some((lo, hi)) = query.ts {
                        if !meta.stats.admits_ts(lo, hi) {
                            return false;
                        }
                    }
                }
                true
            };
            let scan_events = query.wants_events() && meta.events > 0 && admits(true);
            let scan_reports = query.wants_reports() && meta.reports > 0 && admits(false);
            if !scan_events && !scan_reports {
                out.stats.segments_skipped += 1;
                continue;
            }
            out.stats.segments_scanned += 1;
            for block in self.read_segment(meta)? {
                match block {
                    Block::Events(rows) if scan_events => {
                        for (rec, ts) in rows {
                            out.stats.event_rows_scanned += 1;
                            if query.matches_event(rec, ts) {
                                out.stats.event_rows_matched += 1;
                                out.events.push((rec, ts));
                            }
                        }
                    }
                    Block::Reports(rows) if scan_reports => {
                        for row in rows {
                            out.stats.report_rows_scanned += 1;
                            if query.matches_report(&row) {
                                out.stats.report_rows_matched += 1;
                                out.reports.push(row);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SegmentStore;
    use eventlog::{Event, EventKind, PacketId};
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "refill-store-query-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn row(origin: u16, seqno: u32, ts: u64) -> (PackedEvent, u64) {
        let p = PacketId::new(NodeId(origin), seqno);
        (PackedEvent::pack(&Event::new(NodeId(origin), EventKind::Origin, p)), ts)
    }

    #[test]
    fn pushdown_skips_disjoint_segments_without_changing_answers() {
        let tmp = TempDir::new("pushdown");
        let (store, _) = SegmentStore::open(&tmp.0).unwrap();
        // Tiny roll: each append seals its own segment.
        let mut store = store.with_roll_bytes(1);
        store.append_events(&[row(1, 0, 100), row(1, 1, 200)]).unwrap();
        store.append_events(&[row(2, 0, 300), row(2, 1, 400)]).unwrap();
        store.append_events(&[row(9, 5, 900)]).unwrap();
        store.sync().unwrap();
        assert_eq!(store.segments().len(), 3);

        let q = Query {
            origin: Some(NodeId(2)),
            ..Query::default()
        };
        let out = store.query(&q).unwrap();
        assert_eq!(out.events.len(), 2);
        assert_eq!(out.stats.segments_scanned, 1, "two segments pushed down");
        assert_eq!(out.stats.segments_skipped, 2);
        assert_eq!(out.stats.event_rows_scanned, 2);

        let q = Query {
            ts: Some((250, 950)),
            ..Query::default()
        };
        let out = store.query(&q).unwrap();
        assert_eq!(out.events.len(), 3);
        assert_eq!(out.stats.segments_skipped, 1, "first segment's ts range is disjoint");
        assert!(out.reports.is_empty(), "a ts query excludes reports");

        let q = Query {
            seqno: Some((5, 5)),
            ..Query::default()
        };
        let out = store.query(&q).unwrap();
        assert_eq!(out.events, vec![row(9, 5, 900)]);
        assert_eq!(out.stats.segments_scanned, 1);
    }

    #[test]
    fn untimestamped_rows_never_match_a_ts_range() {
        let tmp = TempDir::new("tsnone");
        let (mut store, _) = SegmentStore::open(&tmp.0).unwrap();
        store
            .append_events(&[row(1, 0, eventlog::TS_NONE), row(1, 1, 50)])
            .unwrap();
        store.sync().unwrap();
        let q = Query {
            ts: Some((0, u64::MAX)),
            ..Query::default()
        };
        let out = store.query(&q).unwrap();
        assert_eq!(out.events, vec![row(1, 1, 50)]);
    }
}
