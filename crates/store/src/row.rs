//! The persisted report form.
//!
//! A [`ReportRow`] stores a report the way the signature cache holds one:
//! as a node-abstract [`ReportTemplate`] plus the rename vector mapping
//! canonical node indices back to real node ids. Rehydration is exact —
//! [`ReportRow::report`] returns a [`PacketReport`] equal to the one the
//! row was built from (property-tested in `crates/core`), so persisting
//! reports loses nothing while deduplicating the heavy per-flow structure
//! across packets that share a flow shape.
//!
//! The optional [`Sidecar`] carries the analysis-side context a CitySee
//! `PacketRecord` adds on top of the report — the source-view time
//! estimate, the diagnosis, and (when the store was built from a
//! simulation) the ground-truth fate — which is exactly what the figure
//! extractors need, so `refill query --fig N` reproduces the analysis
//! tables byte-for-byte without re-running reconstruction.

use eventlog::{PacketFate, PacketId};
use netsim::{NodeId, SimTime};
use refill::diagnose::Diagnosis;
use refill::{PacketReport, ReportTemplate};
use serde::{Deserialize, Serialize};

/// Analysis context persisted next to a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sidecar {
    /// Source-view time estimate (back-dated from sequence gaps).
    pub est_time: Option<SimTime>,
    /// REFILL's diagnosis of the packet.
    pub diagnosis: Diagnosis,
    /// Ground truth, when the store was built from a simulation. Stores
    /// built from collected logs alone cannot know this.
    pub fate: Option<PacketFate>,
}

/// One persisted report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportRow {
    /// The packet the report describes.
    pub packet: PacketId,
    /// Rename vector: canonical node index → real node id.
    pub nodes: Vec<NodeId>,
    /// The node-abstract report body.
    pub template: ReportTemplate,
    /// Optional analysis context.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sidecar: Option<Sidecar>,
}

impl ReportRow {
    /// Abstract `report` into its persisted form.
    pub fn from_report(report: &PacketReport, sidecar: Option<Sidecar>) -> ReportRow {
        let (template, nodes) = ReportTemplate::abstract_report(report);
        ReportRow {
            packet: report.packet,
            nodes,
            template,
            sidecar,
        }
    }

    /// Rehydrate the exact original report.
    pub fn report(&self) -> PacketReport {
        self.template.rehydrate(self.packet, &self.nodes)
    }
}
