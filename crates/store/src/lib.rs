//! # refill-store — a durable segment store and query engine for REFILL
//!
//! Reconstruction is expensive; its outputs are not. This crate persists
//! both halves of a run — the merged event stream (as packed 24-byte rows)
//! and the per-packet reports (as node-abstract templates plus a rename
//! vector, the same deduplicated form the signature cache uses) — into an
//! append-only, crash-recoverable segment store, so figures and flow
//! queries replay from disk instead of re-running the pipeline.
//!
//! The layers:
//!
//! * [`segment`] — the on-disk block codec: length-prefixed, CRC-checked
//!   blocks (the same checksum discipline as `eventlog::frame`, via the
//!   shared `eventlog::checksum` module) holding either packed event rows
//!   or JSON report rows.
//! * [`manifest`] — `MANIFEST.json`, updated atomically (tmp + fsync +
//!   rename + directory fsync) and carrying per-segment min/max metadata
//!   for predicate pushdown.
//! * [`store`] — [`SegmentStore`]: the write-ahead append path, recovery
//!   (scan every listed segment, truncate the torn tail at the last valid
//!   block boundary, reconcile the manifest), rolling, and compaction
//!   (k-way merge of segment runs through `eventlog::merge_packed_runs`).
//! * [`query`] — [`Query`]/[`QueryOutput`]: predicate evaluation with
//!   segment-level pushdown over the manifest metadata.
//! * [`row`] — [`ReportRow`]: the persisted report form; rehydrates to an
//!   exact [`refill::PacketReport`].
//! * [`checkpoint`] — [`StoreCheckpoint`]: a
//!   [`refill_stream::CheckpointSink`] implementation so a killed
//!   `refill stream` run resumes from the store's durable prefix.
//! * [`vfs`] — the [`Vfs`]/[`VfsFile`] filesystem seam every store
//!   operation goes through: [`OsVfs`] in production, fault-injecting
//!   implementations (torn writes, fsync failures, rename failures) in
//!   the `refill-testkit` conformance harness.
//!
//! ## Durability contract
//!
//! Appends buffer in the OS; [`SegmentStore::sync`] is the commit point
//! (`fdatasync` the segment, then persist the manifest atomically). After
//! a crash, [`SegmentStore::open`] recovers the longest prefix of each
//! listed segment made of whole, CRC-valid blocks — everything synced is
//! kept, a torn tail is truncated, and unlisted files (lost races of
//! segment creation or compaction leftovers) are pruned. When no manifest
//! exists at all, on-disk segments are adopted instead of pruned, so a
//! store directory survives losing its manifest.

pub mod checkpoint;
pub mod manifest;
pub mod query;
pub mod row;
pub mod segment;
pub mod store;
pub mod vfs;

pub use checkpoint::StoreCheckpoint;
pub use manifest::{Manifest, SegmentMeta, SegmentStats};
pub use query::{Query, QueryOutput, QueryStats};
pub use row::{ReportRow, Sidecar};
pub use segment::{Block, BlockKind};
pub use store::{CompactionReport, RecoveryReport, SegmentStore};
pub use vfs::{OsVfs, Vfs, VfsFile};

/// Errors the store can produce.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// A committed region failed validation — unlike a torn tail (which
    /// recovery silently truncates), this means durable data went bad.
    Corrupt {
        /// Segment file name.
        file: String,
        /// Byte offset of the failing block.
        offset: u64,
        /// What failed.
        detail: String,
    },
    /// A serialization failure (report rows or the manifest).
    Codec {
        /// What failed.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt { file, offset, detail } => {
                write!(f, "store corruption in {file} at byte {offset}: {detail}")
            }
            StoreError::Codec { detail } => write!(f, "store codec error: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StoreError> for std::io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => io,
            other => std::io::Error::other(other.to_string()),
        }
    }
}
