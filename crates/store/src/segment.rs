//! The on-disk block codec.
//!
//! A segment file is a plain concatenation of blocks:
//!
//! ```text
//! +-------+---------+------+------------+-----------+-----------+
//! | magic | version | kind | len u32 LE |  payload  | crc u32 LE|
//! |  2 B  |   1 B   | 1 B  |    4 B     |  len B    |    4 B    |
//! +-------+---------+------+------------+-----------+-----------+
//! ```
//!
//! The CRC-32 (IEEE, via the shared `eventlog::checksum`) covers
//! everything after the magic — version, kind, length, and payload — the
//! same discipline as the wire frames in `eventlog::frame`. Anything that
//! fails validation mid-file is, by definition, a torn tail: blocks are
//! written append-only and become durable only at `fsync`, so a decode
//! failure marks the recovery truncation point.
//!
//! Two payload kinds exist. *Event* payloads are fixed 24-byte rows —
//! a 16-byte [`PackedEvent`] plus its u64 LE local timestamp
//! ([`eventlog::TS_NONE`] preserved verbatim for untimestamped entries).
//! *Report* payloads are a JSON array of [`ReportRow`]s.

use crate::row::ReportRow;
use crate::StoreError;
use eventlog::checksum::Crc32;
use eventlog::PackedEvent;

/// Segment block magic. Distinct from the wire-frame magic (`EF 17`) so a
/// segment file can never be mistaken for a record stream.
pub const BLOCK_MAGIC: [u8; 2] = [0xEF, 0x5E];

/// Current block format version.
pub const BLOCK_VERSION: u8 = 1;

/// Bytes before the payload: magic (2) + version (1) + kind (1) + len (4).
pub const BLOCK_HEADER_LEN: usize = 8;

/// Trailing checksum bytes.
pub const BLOCK_CRC_LEN: usize = 4;

/// Bytes per packed event row: a 16-byte event plus a u64 timestamp.
pub const EVENT_ROW_LEN: usize = 24;

/// What a block holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Packed event rows.
    Events,
    /// JSON report rows.
    Reports,
}

impl BlockKind {
    fn from_byte(b: u8) -> Option<BlockKind> {
        match b {
            0 => Some(BlockKind::Events),
            1 => Some(BlockKind::Reports),
            _ => None,
        }
    }

    fn byte(self) -> u8 {
        match self {
            BlockKind::Events => 0,
            BlockKind::Reports => 1,
        }
    }
}

/// A decoded block.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// Packed event rows with their raw timestamps.
    Events(Vec<(PackedEvent, u64)>),
    /// Report rows.
    Reports(Vec<ReportRow>),
}

fn encode_block(kind: BlockKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(BLOCK_HEADER_LEN + payload.len() + BLOCK_CRC_LEN);
    out.extend_from_slice(&BLOCK_MAGIC);
    out.push(BLOCK_VERSION);
    out.push(kind.byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = Crc32::new().update(&out[2..]).finish();
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Encode one events block.
pub fn encode_events(rows: &[(PackedEvent, u64)]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(rows.len() * EVENT_ROW_LEN);
    for (rec, ts) in rows {
        payload.extend_from_slice(&rec.to_bytes());
        payload.extend_from_slice(&ts.to_le_bytes());
    }
    encode_block(BlockKind::Events, &payload)
}

/// Encode one reports block.
pub fn encode_reports(rows: &[ReportRow]) -> Result<Vec<u8>, StoreError> {
    let payload = serde_json::to_vec(rows).map_err(|e| StoreError::Codec {
        detail: format!("encoding report rows: {e}"),
    })?;
    Ok(encode_block(BlockKind::Reports, &payload))
}

/// Try to decode the block starting at `bytes[0]`.
///
/// Returns the block and its total encoded length, or `None` when the
/// bytes do not begin with one complete, CRC-valid block — the signal
/// recovery uses to place the truncation point. There is deliberately no
/// resynchronization here (unlike the wire decoder): a segment is written
/// append-only, so the first invalid byte ends the durable prefix.
pub fn decode_block(bytes: &[u8]) -> Option<(Block, usize)> {
    if bytes.len() < BLOCK_HEADER_LEN + BLOCK_CRC_LEN {
        return None;
    }
    if bytes[0..2] != BLOCK_MAGIC || bytes[2] != BLOCK_VERSION {
        return None;
    }
    let kind = BlockKind::from_byte(bytes[3])?;
    let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    let total = BLOCK_HEADER_LEN + len + BLOCK_CRC_LEN;
    if bytes.len() < total {
        return None;
    }
    let stored = u32::from_le_bytes([
        bytes[total - 4],
        bytes[total - 3],
        bytes[total - 2],
        bytes[total - 1],
    ]);
    let computed = Crc32::new().update(&bytes[2..total - BLOCK_CRC_LEN]).finish();
    if stored != computed {
        return None;
    }
    let payload = &bytes[BLOCK_HEADER_LEN..total - BLOCK_CRC_LEN];
    let block = match kind {
        BlockKind::Events => {
            if payload.len() % EVENT_ROW_LEN != 0 {
                return None;
            }
            let mut rows = Vec::with_capacity(payload.len() / EVENT_ROW_LEN);
            for row in payload.chunks_exact(EVENT_ROW_LEN) {
                let mut rec = [0u8; 16];
                rec.copy_from_slice(&row[0..16]);
                let mut ts = [0u8; 8];
                ts.copy_from_slice(&row[16..24]);
                rows.push((PackedEvent::from_bytes(rec), u64::from_le_bytes(ts)));
            }
            Block::Events(rows)
        }
        BlockKind::Reports => {
            let rows: Vec<ReportRow> = serde_json::from_slice(payload).ok()?;
            Block::Reports(rows)
        }
    };
    Some((block, total))
}

/// Walk `bytes` block by block, returning the decoded blocks and the byte
/// length of the valid prefix. `bytes.len() - valid_len` is the torn tail.
pub fn scan_blocks(bytes: &[u8]) -> (Vec<Block>, usize) {
    let mut blocks = Vec::new();
    let mut offset = 0usize;
    while let Some((block, used)) = decode_block(&bytes[offset..]) {
        blocks.push(block);
        offset += used;
    }
    (blocks, offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventlog::{Event, EventKind, PacketId, TS_NONE};
    use netsim::NodeId;

    fn rows(n: u32) -> Vec<(PackedEvent, u64)> {
        (0..n)
            .map(|i| {
                let p = PacketId::new(NodeId(1), i);
                let e = Event::new(NodeId(2), EventKind::Recv { from: NodeId(1) }, p);
                let ts = if i % 3 == 0 { TS_NONE } else { u64::from(i) * 17 };
                (PackedEvent::pack(&e), ts)
            })
            .collect()
    }

    #[test]
    fn events_roundtrip() {
        let rows = rows(10);
        let bytes = encode_events(&rows);
        let (block, used) = decode_block(&bytes).expect("valid block");
        assert_eq!(used, bytes.len());
        assert_eq!(block, Block::Events(rows));
    }

    #[test]
    fn empty_events_block_roundtrips() {
        let bytes = encode_events(&[]);
        let (block, used) = decode_block(&bytes).expect("valid block");
        assert_eq!(used, bytes.len());
        assert_eq!(block, Block::Events(Vec::new()));
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = encode_events(&rows(4));
        for cut in 0..bytes.len() {
            assert!(
                decode_block(&bytes[..cut]).is_none(),
                "a {cut}-byte prefix of a {}-byte block must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let bytes = encode_events(&rows(3));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            // Flipping a length byte can make the block "longer" than the
            // buffer (reads as torn) or damage the CRC; either way the
            // block must not decode as valid.
            assert!(decode_block(&bad).is_none(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn scan_stops_at_the_first_invalid_block() {
        let mut bytes = encode_events(&rows(2));
        let first = bytes.len();
        bytes.extend_from_slice(&encode_events(&rows(5)));
        // Tear the second block three bytes short.
        bytes.truncate(bytes.len() - 3);
        let (blocks, valid) = scan_blocks(&bytes);
        assert_eq!(blocks.len(), 1);
        assert_eq!(valid, first);
    }
}
