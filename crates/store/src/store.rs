//! The segment store: append, sync, recovery, rolling, compaction.

use crate::manifest::{Manifest, SegmentMeta, SegmentStats, MANIFEST_VERSION};
use crate::row::ReportRow;
use crate::segment::{self, Block};
use crate::vfs::{OsVfs, Vfs, VfsFile};
use crate::StoreError;
use eventlog::{merge_packed_runs, PackedEvent, PacketId};
use refill_telemetry::{Counter, Hist, NoopRecorder, Recorder, Stage, StageTimer};
use rustc_hash::{FxHashMap, FxHashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default roll threshold: seal a segment once it crosses this many bytes.
pub const DEFAULT_ROLL_BYTES: u64 = 8 * 1024 * 1024;

/// Event rows per block when compaction rewrites a segment.
const COMPACT_EVENTS_PER_BLOCK: usize = 64 * 1024;

/// Report rows per block when compaction rewrites a segment.
const COMPACT_REPORTS_PER_BLOCK: usize = 4 * 1024;

/// What recovery found and did at open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments in the recovered store.
    pub segments: usize,
    /// Segments whose torn tail was truncated.
    pub truncated_segments: usize,
    /// Bytes discarded from torn tails.
    pub torn_bytes: u64,
    /// Files on disk the manifest did not list, removed at open (lost
    /// races of segment creation, compaction leftovers).
    pub pruned_files: usize,
    /// Segments adopted from disk because no (valid) manifest existed.
    pub adopted_segments: usize,
    /// Listed segments whose file was missing on disk.
    pub missing_segments: usize,
    /// Total recovered event rows.
    pub events: u64,
    /// Total recovered report rows.
    pub reports: u64,
}

/// What a compaction did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segments merged away.
    pub merged_segments: usize,
    /// Event rows in the compacted segment.
    pub events: u64,
    /// Report rows in the compacted segment (after last-wins dedup).
    pub reports: u64,
    /// Superseded report rows dropped by the dedup.
    pub dropped_reports: u64,
}

/// A durable append-only segment store for packed events and report rows.
///
/// See the crate docs for the durability contract. All reads go through
/// the committed metadata, so a `SegmentStore` value is always consistent
/// with what recovery would reconstruct from its directory.
pub struct SegmentStore {
    dir: PathBuf,
    segments: Vec<SegmentMeta>,
    /// Append handle for the last segment, opened lazily.
    active: Option<Box<dyn VfsFile>>,
    next_id: u64,
    roll_bytes: u64,
    recorder: Arc<dyn Recorder>,
    /// The filesystem seam every operation goes through ([`OsVfs`] in
    /// production; fault injectors in tests).
    vfs: Arc<dyn Vfs>,
}

fn is_segment_file(name: &str) -> bool {
    name.starts_with("seg-") && name.ends_with(".refill")
}

fn segment_id(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?.strip_suffix(".refill")?.parse().ok()
}

impl SegmentStore {
    /// Open (or create) the store at `dir`, running recovery.
    pub fn open(dir: impl AsRef<Path>) -> Result<(SegmentStore, RecoveryReport), StoreError> {
        Self::open_recorded(dir, Arc::new(NoopRecorder))
    }

    /// [`SegmentStore::open`] with telemetry.
    pub fn open_recorded(
        dir: impl AsRef<Path>,
        recorder: Arc<dyn Recorder>,
    ) -> Result<(SegmentStore, RecoveryReport), StoreError> {
        Self::open_with_vfs(dir, Arc::new(OsVfs), recorder)
    }

    /// [`SegmentStore::open`] through an explicit [`Vfs`] — the seam a
    /// fault-injecting filesystem interposes on.
    pub fn open_with_vfs(
        dir: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
        recorder: Arc<dyn Recorder>,
    ) -> Result<(SegmentStore, RecoveryReport), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)?;
        let _span = StageTimer::start(&*recorder, Stage::StoreRecover);
        let manifest = Manifest::load_with(&dir, &*vfs)?;

        let mut on_disk: Vec<String> = Vec::new();
        for name in vfs.read_dir(&dir)? {
            if is_segment_file(&name) {
                on_disk.push(name);
            }
        }
        on_disk.sort();

        let mut report = RecoveryReport::default();
        // The manifest is the commit record: with one present, unlisted
        // files are un-committed leftovers and go away; without one, the
        // blocks on disk are all we have, so adopt them.
        let scan_list: Vec<String> = match &manifest {
            Some(m) => {
                let listed: FxHashSet<&str> =
                    m.segments.iter().map(|s| s.file.as_str()).collect();
                for name in &on_disk {
                    if !listed.contains(name.as_str()) {
                        vfs.remove_file(&dir.join(name))?;
                        report.pruned_files += 1;
                        recorder.inc(Counter::StoreSegmentsPruned);
                    }
                }
                let present: FxHashSet<&str> =
                    on_disk.iter().map(|s| s.as_str()).collect();
                let mut list = Vec::new();
                for meta in &m.segments {
                    if present.contains(meta.file.as_str()) {
                        list.push(meta.file.clone());
                    } else {
                        report.missing_segments += 1;
                    }
                }
                list
            }
            None => {
                report.adopted_segments = on_disk.len();
                on_disk.clone()
            }
        };

        let mut segments = Vec::with_capacity(scan_list.len());
        for name in &scan_list {
            let meta = scan_segment(&dir, name, &*vfs, &*recorder, &mut report)?;
            report.events += meta.events;
            report.reports += meta.reports;
            segments.push(meta);
        }
        report.segments = segments.len();

        let next_id = segments
            .iter()
            .filter_map(|m| segment_id(&m.file))
            .max()
            .map_or(1, |m| m + 1);
        let store = SegmentStore {
            dir,
            segments,
            active: None,
            next_id,
            roll_bytes: DEFAULT_ROLL_BYTES,
            recorder,
            vfs,
        };
        store.save_manifest()?;
        Ok((store, report))
    }

    /// Override the roll threshold (tests use tiny segments).
    pub fn with_roll_bytes(mut self, roll_bytes: u64) -> SegmentStore {
        self.roll_bytes = roll_bytes.max(1);
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The committed segments, in store order.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// Total event rows across all segments.
    pub fn total_events(&self) -> u64 {
        self.segments.iter().map(|m| m.events).sum()
    }

    /// Total report rows across all segments (before dedup).
    pub fn total_reports(&self) -> u64 {
        self.segments.iter().map(|m| m.reports).sum()
    }

    pub(crate) fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    fn save_manifest(&self) -> Result<(), StoreError> {
        Manifest {
            version: MANIFEST_VERSION,
            segments: self.segments.clone(),
        }
        .save_with(&self.dir, &*self.vfs)
    }

    fn ensure_active(&mut self) -> Result<(), StoreError> {
        if self.active.is_some() {
            return Ok(());
        }
        let reuse = self
            .segments
            .last()
            .is_some_and(|m| m.committed_len < self.roll_bytes);
        if !reuse {
            let name = format!("seg-{:06}.refill", self.next_id);
            self.next_id += 1;
            self.vfs.create(&self.dir.join(&name))?.sync_all()?;
            self.segments.push(SegmentMeta {
                file: name,
                committed_len: 0,
                blocks: 0,
                events: 0,
                reports: 0,
                stats: SegmentStats::default(),
            });
            // List the file before any data lands in it: recovery prunes
            // unlisted files, so an unlisted-but-written segment would be
            // thrown away by the next open.
            self.save_manifest()?;
        }
        let meta = self.segments.last().expect("ensure_active pushed a segment");
        let file = self.vfs.open_append(&self.dir.join(&meta.file))?;
        self.active = Some(file);
        Ok(())
    }

    fn append_block(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.ensure_active()?;
        self.active
            .as_mut()
            .expect("ensure_active opened the handle")
            .write_all(bytes)?;
        let meta = self.segments.last_mut().expect("active segment exists");
        meta.committed_len += bytes.len() as u64;
        meta.blocks += 1;
        self.recorder.inc(Counter::StoreBlocksWritten);
        self.recorder.add(Counter::StoreBytesWritten, bytes.len() as u64);
        self.recorder.observe(Hist::StoreBlockBytes, bytes.len() as u64);
        Ok(())
    }

    fn roll_if_needed(&mut self) -> Result<(), StoreError> {
        let len = self.segments.last().map_or(0, |m| m.committed_len);
        if len >= self.roll_bytes {
            self.sync()?;
            if let Some(m) = self.segments.last() {
                self.recorder.observe(Hist::StoreSegmentEvents, m.events);
            }
            // Dropping the handle seals the segment; the next append sees
            // it over the threshold and starts a fresh one.
            self.active = None;
        }
        Ok(())
    }

    /// Append one events block.
    pub fn append_events(&mut self, rows: &[(PackedEvent, u64)]) -> Result<(), StoreError> {
        if rows.is_empty() {
            return Ok(());
        }
        let recorder = Arc::clone(&self.recorder);
        let _span = StageTimer::start(&*recorder, Stage::StoreAppend);
        let bytes = segment::encode_events(rows);
        self.append_block(&bytes)?;
        let meta = self.segments.last_mut().expect("active segment exists");
        meta.events += rows.len() as u64;
        for (rec, ts) in rows {
            meta.stats.note_packet(rec.packet());
            meta.stats.note_ts(*ts);
        }
        self.recorder.add(Counter::StoreEventsAppended, rows.len() as u64);
        self.roll_if_needed()
    }

    /// Append one reports block.
    pub fn append_reports(&mut self, rows: &[ReportRow]) -> Result<(), StoreError> {
        if rows.is_empty() {
            return Ok(());
        }
        let recorder = Arc::clone(&self.recorder);
        let _span = StageTimer::start(&*recorder, Stage::StoreAppend);
        let bytes = segment::encode_reports(rows)?;
        self.append_block(&bytes)?;
        let meta = self.segments.last_mut().expect("active segment exists");
        meta.reports += rows.len() as u64;
        for r in rows {
            meta.stats.note_packet(r.packet);
        }
        self.recorder.add(Counter::StoreReportsAppended, rows.len() as u64);
        self.roll_if_needed()
    }

    /// The commit point: `fdatasync` the active segment, then persist the
    /// manifest atomically. Everything appended before a successful sync
    /// survives a crash.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(f) = &mut self.active {
            f.sync_data()?;
        }
        self.save_manifest()
    }

    /// Decode one segment's committed blocks.
    ///
    /// Unlike recovery (which treats invalid bytes as a torn tail), a
    /// decode failure *inside the committed region* is real corruption and
    /// surfaces as [`StoreError::Corrupt`] with the failing offset.
    pub fn read_segment(&self, meta: &SegmentMeta) -> Result<Vec<Block>, StoreError> {
        let bytes = self.vfs.read(&self.dir.join(&meta.file))?;
        if (bytes.len() as u64) < meta.committed_len {
            return Err(StoreError::Corrupt {
                file: meta.file.clone(),
                offset: bytes.len() as u64,
                detail: format!(
                    "segment shorter ({} B) than its committed length ({} B)",
                    bytes.len(),
                    meta.committed_len
                ),
            });
        }
        let committed = &bytes[..meta.committed_len as usize];
        let (blocks, valid) = segment::scan_blocks(committed);
        if (valid as u64) < meta.committed_len {
            return Err(StoreError::Corrupt {
                file: meta.file.clone(),
                offset: valid as u64,
                detail: "invalid block inside the committed region".to_string(),
            });
        }
        Ok(blocks)
    }

    /// All event rows, in append order across segments.
    pub fn events(&self) -> Result<Vec<(PackedEvent, u64)>, StoreError> {
        let mut out = Vec::with_capacity(self.total_events() as usize);
        for meta in &self.segments {
            for block in self.read_segment(meta)? {
                if let Block::Events(mut rows) = block {
                    out.append(&mut rows);
                }
            }
        }
        Ok(out)
    }

    /// All report rows, in append order across segments (duplicates kept).
    pub fn reports(&self) -> Result<Vec<ReportRow>, StoreError> {
        let mut out = Vec::with_capacity(self.total_reports() as usize);
        for meta in &self.segments {
            for block in self.read_segment(meta)? {
                if let Block::Reports(mut rows) = block {
                    out.append(&mut rows);
                }
            }
        }
        Ok(out)
    }

    /// The latest report per packet (append order is emission order, so
    /// last wins), sorted by packet id — the converged view a completed
    /// run leaves behind.
    pub fn latest_reports(&self) -> Result<Vec<ReportRow>, StoreError> {
        let mut latest: FxHashMap<PacketId, ReportRow> = FxHashMap::default();
        for row in self.reports()? {
            latest.insert(row.packet, row);
        }
        let mut rows: Vec<ReportRow> = latest.into_values().collect();
        rows.sort_by_key(|r| r.packet);
        Ok(rows)
    }

    /// Merge every segment into one: event runs go through the shared
    /// loser-tree k-way merge (`eventlog::merge_packed_runs`), reports
    /// collapse to their latest version per packet. Query results are
    /// unchanged — the event multiset and the latest-report set are both
    /// preserved exactly.
    pub fn compact(&mut self) -> Result<CompactionReport, StoreError> {
        let recorder = Arc::clone(&self.recorder);
        let _span = StageTimer::start(&*recorder, Stage::StoreCompact);
        self.sync()?;
        self.active = None;

        let mut runs: Vec<Vec<(PackedEvent, u64)>> = Vec::new();
        let mut all_reports: Vec<ReportRow> = Vec::new();
        for meta in &self.segments {
            let mut run = Vec::new();
            for block in self.read_segment(meta)? {
                match block {
                    Block::Events(mut rows) => run.append(&mut rows),
                    Block::Reports(mut rows) => all_reports.append(&mut rows),
                }
            }
            runs.push(run);
        }
        let run_refs: Vec<&[(PackedEvent, u64)]> = runs.iter().map(|r| r.as_slice()).collect();
        let merged = merge_packed_runs(&run_refs);

        let total_reports = all_reports.len();
        let mut latest: FxHashMap<PacketId, ReportRow> = FxHashMap::default();
        for row in all_reports {
            latest.insert(row.packet, row);
        }
        let mut reports: Vec<ReportRow> = latest.into_values().collect();
        reports.sort_by_key(|r| r.packet);

        let old: Vec<String> = self.segments.iter().map(|m| m.file.clone()).collect();
        let name = format!("seg-{:06}.refill", self.next_id);
        self.next_id += 1;

        let mut meta = SegmentMeta {
            file: name.clone(),
            committed_len: 0,
            blocks: 0,
            events: 0,
            reports: 0,
            stats: SegmentStats::default(),
        };
        let mut out = Vec::new();
        for chunk in merged.chunks(COMPACT_EVENTS_PER_BLOCK) {
            let bytes = segment::encode_events(chunk);
            self.recorder.observe(Hist::StoreBlockBytes, bytes.len() as u64);
            out.extend_from_slice(&bytes);
            meta.blocks += 1;
            meta.events += chunk.len() as u64;
            for (rec, ts) in chunk {
                meta.stats.note_packet(rec.packet());
                meta.stats.note_ts(*ts);
            }
        }
        for chunk in reports.chunks(COMPACT_REPORTS_PER_BLOCK) {
            let bytes = segment::encode_reports(chunk)?;
            self.recorder.observe(Hist::StoreBlockBytes, bytes.len() as u64);
            out.extend_from_slice(&bytes);
            meta.blocks += 1;
            meta.reports += chunk.len() as u64;
            for r in chunk {
                meta.stats.note_packet(r.packet);
            }
        }
        meta.committed_len = out.len() as u64;

        // Write the new segment fully and durably, *then* swing the
        // manifest, *then* delete the merged files. A crash in between
        // leaves either the old store (new file unlisted → pruned at next
        // open) or the new one (old files unlisted → pruned).
        {
            let mut f = self.vfs.create(&self.dir.join(&name))?;
            f.write_all(&out)?;
            f.sync_all()?;
        }
        self.recorder.add(Counter::StoreBytesWritten, out.len() as u64);
        self.recorder
            .add(Counter::StoreBlocksWritten, meta.blocks);
        self.recorder.observe(Hist::StoreSegmentEvents, meta.events);
        self.segments = vec![meta];
        self.save_manifest()?;
        for file in &old {
            let _ = self.vfs.remove_file(&self.dir.join(file));
            self.recorder.inc(Counter::StoreSegmentsPruned);
        }
        Ok(CompactionReport {
            merged_segments: old.len(),
            events: merged.len() as u64,
            reports: reports.len() as u64,
            dropped_reports: (total_reports - reports.len()) as u64,
        })
    }
}

fn scan_segment(
    dir: &Path,
    name: &str,
    vfs: &dyn Vfs,
    recorder: &dyn Recorder,
    report: &mut RecoveryReport,
) -> Result<SegmentMeta, StoreError> {
    let path = dir.join(name);
    let bytes = vfs.read(&path)?;
    let (blocks, valid) = segment::scan_blocks(&bytes);
    if valid < bytes.len() {
        let torn = (bytes.len() - valid) as u64;
        report.torn_bytes += torn;
        report.truncated_segments += 1;
        recorder.add(Counter::StoreTornBytes, torn);
        vfs.truncate(&path, valid as u64)?;
    }
    let mut meta = SegmentMeta {
        file: name.to_string(),
        committed_len: valid as u64,
        blocks: blocks.len() as u64,
        events: 0,
        reports: 0,
        stats: SegmentStats::default(),
    };
    for block in &blocks {
        match block {
            Block::Events(rows) => {
                meta.events += rows.len() as u64;
                for (rec, ts) in rows {
                    meta.stats.note_packet(rec.packet());
                    meta.stats.note_ts(*ts);
                }
            }
            Block::Reports(rows) => {
                meta.reports += rows.len() as u64;
                for r in rows {
                    meta.stats.note_packet(r.packet);
                }
            }
        }
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventlog::{Event, EventKind, TS_NONE};
    use netsim::NodeId;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "refill-store-{tag}-{}-{:x}",
                std::process::id(),
                &dir_nonce()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn dir_nonce() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        N.fetch_add(1, Ordering::Relaxed)
    }

    fn rows(origin: u16, n: u32) -> Vec<(PackedEvent, u64)> {
        (0..n)
            .map(|i| {
                let p = eventlog::PacketId::new(NodeId(origin), i);
                let e = Event::new(NodeId(origin), EventKind::Origin, p);
                let ts = if i % 4 == 0 { TS_NONE } else { u64::from(i) * 100 };
                (PackedEvent::pack(&e), ts)
            })
            .collect()
    }

    #[test]
    fn append_sync_reopen_roundtrip() {
        let tmp = TempDir::new("roundtrip");
        let all = rows(3, 20);
        {
            let (mut store, rep) = SegmentStore::open(&tmp.0).unwrap();
            assert_eq!(rep, RecoveryReport::default());
            store.append_events(&all[..12]).unwrap();
            store.append_events(&all[12..]).unwrap();
            store.sync().unwrap();
        }
        let (store, rep) = SegmentStore::open(&tmp.0).unwrap();
        assert_eq!(rep.events, 20);
        assert_eq!(rep.torn_bytes, 0);
        assert_eq!(store.events().unwrap(), all);
    }

    #[test]
    fn rolling_splits_segments_and_keeps_order() {
        let tmp = TempDir::new("rolling");
        let all = rows(5, 40);
        {
            let (store, _) = SegmentStore::open(&tmp.0).unwrap();
            let mut store = store.with_roll_bytes(256);
            for chunk in all.chunks(8) {
                store.append_events(chunk).unwrap();
            }
            store.sync().unwrap();
            assert!(store.segments().len() > 1, "tiny roll threshold must split");
        }
        let (store, rep) = SegmentStore::open(&tmp.0).unwrap();
        assert!(rep.segments > 1);
        assert_eq!(store.events().unwrap(), all);
    }

    #[test]
    fn unlisted_files_are_pruned_and_lost_manifest_adopts() {
        let tmp = TempDir::new("prune-adopt");
        let all = rows(2, 10);
        {
            let (mut store, _) = SegmentStore::open(&tmp.0).unwrap();
            store.append_events(&all).unwrap();
            store.sync().unwrap();
        }
        // An unlisted file (e.g. a crashed compaction's output) is pruned.
        std::fs::write(tmp.0.join("seg-009999.refill"), segment::encode_events(&rows(9, 3)))
            .unwrap();
        let (store, rep) = SegmentStore::open(&tmp.0).unwrap();
        assert_eq!(rep.pruned_files, 1);
        assert_eq!(store.events().unwrap(), all);
        assert!(!tmp.0.join("seg-009999.refill").exists());
        // Without a manifest, on-disk segments are adopted instead.
        std::fs::remove_file(tmp.0.join(crate::manifest::MANIFEST_FILE)).unwrap();
        let (store, rep) = SegmentStore::open(&tmp.0).unwrap();
        assert_eq!(rep.adopted_segments, 1);
        assert_eq!(store.events().unwrap(), all);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let tmp = TempDir::new("torn");
        let all = rows(4, 16);
        {
            let (mut store, _) = SegmentStore::open(&tmp.0).unwrap();
            store.append_events(&all[..8]).unwrap();
            store.sync().unwrap();
        }
        // Simulate a crash mid-append: garbage after the valid prefix.
        let seg = tmp.0.join("seg-000001.refill");
        let mut bytes = std::fs::read(&seg).unwrap();
        let valid = bytes.len();
        bytes.extend_from_slice(&segment::encode_events(&all[8..])[..10]);
        std::fs::write(&seg, &bytes).unwrap();

        let (mut store, rep) = SegmentStore::open(&tmp.0).unwrap();
        assert_eq!(rep.truncated_segments, 1);
        assert_eq!(rep.torn_bytes, 10);
        assert_eq!(std::fs::metadata(&seg).unwrap().len() as usize, valid);
        assert_eq!(store.events().unwrap(), all[..8]);
        // The store keeps working after recovery.
        store.append_events(&all[8..]).unwrap();
        store.sync().unwrap();
        assert_eq!(store.events().unwrap(), all);
    }

    #[test]
    fn compaction_preserves_events_and_latest_reports() {
        let tmp = TempDir::new("compact");
        let (store, _) = SegmentStore::open(&tmp.0).unwrap();
        let mut store = store.with_roll_bytes(200);
        let a = rows(1, 10);
        let b = rows(2, 10);
        store.append_events(&a).unwrap();
        store.append_events(&b).unwrap();
        store.sync().unwrap();
        assert!(store.segments().len() > 1);
        let mut before_events = store.events().unwrap();
        let rep = store.compact().unwrap();
        assert!(rep.merged_segments > 1);
        assert_eq!(store.segments().len(), 1);
        let mut after_events = store.events().unwrap();
        // The merge is multiset-preserving; compare sorted.
        let key = |(r, t): &(PackedEvent, u64)| (r.packet_key(), r.to_bytes(), *t);
        before_events.sort_by_key(key);
        after_events.sort_by_key(key);
        assert_eq!(before_events, after_events);
        // Reopen sees exactly the compacted store.
        drop(store);
        let (store, rep) = SegmentStore::open(&tmp.0).unwrap();
        assert_eq!(rep.segments, 1);
        assert_eq!(rep.events, 20);
        assert_eq!(store.events().unwrap().len(), 20);
    }
}
