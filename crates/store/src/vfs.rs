//! A minimal filesystem seam for the store.
//!
//! Every filesystem operation the store performs — segment creation,
//! appends, fsyncs, manifest renames, recovery truncation — goes through
//! the [`Vfs`] trait instead of calling `std::fs` directly. Production
//! code uses [`OsVfs`] (a zero-cost passthrough); test harnesses
//! substitute a fault-injecting implementation (see `refill-testkit`'s
//! `FaultyVfs`) to exercise torn writes, short writes, fsync failures and
//! rename failures deterministically, without touching the durability
//! logic under test.
//!
//! The trait is deliberately narrow: it exposes exactly the operations the
//! store uses, at the granularity the durability contract cares about. In
//! particular [`Vfs::truncate`] bundles the open-set_len-fsync dance that
//! recovery performs on a torn tail, because a fault injector wants to
//! treat "truncate to the valid prefix" as one atomic decision point, not
//! three.

use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;

/// An open writable file handle, as the store uses one: append bytes,
/// make them durable.
pub trait VfsFile: Send {
    /// Append the whole buffer.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync`.
    fn sync_data(&mut self) -> io::Result<()>;
    /// `fsync`.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The filesystem operations the store performs.
pub trait Vfs: Send + Sync {
    /// Create (or truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open an existing file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// File names (not paths) of the directory's entries.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically replace `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Truncate a file to `len` bytes and fsync the result (recovery's
    /// torn-tail repair).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Fsync a directory, making renames within it durable. Callers treat
    /// failure as best-effort (some filesystems disallow directory opens).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: a direct passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsVfs;

impl VfsFile for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }
}

impl Vfs for OsVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(File::create(path)?))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(OpenOptions::new().append(true).open(path)?))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_vfs_roundtrips_and_truncates() {
        let dir = std::env::temp_dir().join(format!("refill-vfs-{}", std::process::id()));
        let vfs = OsVfs;
        vfs.create_dir_all(&dir).unwrap();
        let path = dir.join("file.bin");
        {
            let mut f = vfs.create(&path).unwrap();
            f.write_all(b"hello").unwrap();
            f.sync_all().unwrap();
        }
        {
            let mut f = vfs.open_append(&path).unwrap();
            f.write_all(b" world").unwrap();
            f.sync_data().unwrap();
        }
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        vfs.truncate(&path, 5).unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        assert!(vfs.read_dir(&dir).unwrap().contains(&"file.bin".to_string()));
        vfs.rename(&path, &dir.join("renamed.bin")).unwrap();
        let _ = vfs.sync_dir(&dir);
        vfs.remove_file(&dir.join("renamed.bin")).unwrap();
        assert!(vfs.read_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
