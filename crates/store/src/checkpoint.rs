//! Durable checkpointing for streamed reconstruction.
//!
//! [`StoreCheckpoint`] implements [`refill_stream::CheckpointSink`]: every
//! record the stream driver absorbs lands in the store as a packed event
//! row, and every emitted report batch (window closes plus the final
//! flush) lands as report rows — with the events flushed *first* at every
//! durability point, so the store never holds a report whose evidence was
//! lost. After a crash, the store's event rows are exactly the durable
//! prefix of the absorbed record sequence; [`StoreCheckpoint::resume_records`]
//! replays them (in order) into a fresh `StreamReconstructor` and
//! [`CheckpointSink::skip_records`] tells the driver how many decoded
//! records to drop before the hooks re-engage. The resumed run's final
//! reports are byte-identical to an uninterrupted run because
//! `StreamReconstructor::finish` converges to the batch answer over the
//! full ingested sequence regardless of poll cadence.
//!
//! One representational note: a replayed record's lane is its event's
//! `node` field. Every producer in this workspace logs events onto the
//! node that recorded them (`record.node == record.entry.event.node`), so
//! the round trip is exact.

use crate::row::ReportRow;
use crate::store::SegmentStore;
use crate::StoreError;
use eventlog::frame::NodeRecord;
use eventlog::logger::LogEntry;
use eventlog::{PackedEvent, TS_NONE};
use refill::PacketReport;
use refill_stream::CheckpointSink;

/// Buffered rows before an unforced flush. Durability is still governed by
/// `sync` — this only bounds block granularity between syncs.
const FLUSH_ROWS: usize = 1024;

/// A [`CheckpointSink`] backed by a [`SegmentStore`].
pub struct StoreCheckpoint {
    store: SegmentStore,
    /// Event rows already durable when this checkpoint was constructed —
    /// the resume skip count, frozen at construction so this run's own
    /// appends don't shift it.
    skip: u64,
    buffer: Vec<(PackedEvent, u64)>,
}

impl StoreCheckpoint {
    /// Wrap a (freshly opened, recovered) store.
    pub fn new(store: SegmentStore) -> StoreCheckpoint {
        let skip = store.total_events();
        StoreCheckpoint {
            store,
            skip,
            buffer: Vec::new(),
        }
    }

    /// The durable records from an interrupted run, in absorption order.
    /// Replay these into a fresh `StreamReconstructor` (via `ingest`,
    /// without polling) before re-running the driver over the same input.
    pub fn resume_records(&self) -> Result<Vec<NodeRecord>, StoreError> {
        Ok(self
            .store
            .events()?
            .into_iter()
            .map(|(rec, ts)| {
                let event = rec.unpack();
                let node = event.node;
                NodeRecord::new(
                    node,
                    LogEntry {
                        event,
                        local_ts: (ts != TS_NONE).then_some(ts),
                    },
                )
            })
            .collect())
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    fn flush_events(&mut self) -> Result<(), StoreError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.buffer);
        self.store.append_events(&rows)
    }

    /// Flush, sync, and hand the store back.
    pub fn finish(mut self) -> Result<SegmentStore, StoreError> {
        self.flush_events()?;
        self.store.sync()?;
        Ok(self.store)
    }
}

impl CheckpointSink for StoreCheckpoint {
    fn skip_records(&self) -> u64 {
        self.skip
    }

    fn on_record(&mut self, rec: &NodeRecord) -> std::io::Result<()> {
        self.buffer.push((
            PackedEvent::pack(&rec.entry.event),
            rec.entry.local_ts.unwrap_or(TS_NONE),
        ));
        if self.buffer.len() >= FLUSH_ROWS {
            self.flush_events()?;
        }
        Ok(())
    }

    fn on_reports(&mut self, reports: &[PacketReport]) -> std::io::Result<()> {
        // Evidence before conclusions: the records these reports were
        // reconstructed from must hit the store first.
        self.flush_events()?;
        let rows: Vec<ReportRow> = reports
            .iter()
            .map(|r| ReportRow::from_report(r, None))
            .collect();
        self.store.append_reports(&rows)?;
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.flush_events()?;
        self.store.sync()?;
        Ok(())
    }
}
