//! The store manifest: `MANIFEST.json`, updated atomically.
//!
//! The manifest is the commit record — a segment file is part of the store
//! iff it is listed here. Updates go through the classic atomic-replace
//! dance: write `MANIFEST.json.tmp`, `fsync` it, `rename` over the real
//! name, `fsync` the directory. A crash at any point leaves either the old
//! or the new manifest intact, never a torn one.
//!
//! Each entry carries per-segment min/max metadata ([`SegmentStats`]) that
//! the query engine uses for predicate pushdown: a segment whose ranges
//! cannot intersect the predicate is skipped without touching its file.
//! The stats are recomputed from the block scan at every recovery, so a
//! stale manifest only ever costs extra scanning, never wrong answers.

use crate::vfs::{OsVfs, Vfs};
use crate::StoreError;
use eventlog::{PacketId, TS_NONE};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Min/max pushdown metadata for one segment.
///
/// Origin and seqno ranges cover every row (event and report alike);
/// timestamp ranges cover only event rows that carry a real local
/// timestamp (`TS_NONE` rows are excluded — they can never match a time
/// predicate). `None` means "no such rows in this segment".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentStats {
    /// Smallest packet-origin node id.
    pub min_origin: Option<u16>,
    /// Largest packet-origin node id.
    pub max_origin: Option<u16>,
    /// Smallest packet sequence number.
    pub min_seqno: Option<u32>,
    /// Largest packet sequence number.
    pub max_seqno: Option<u32>,
    /// Smallest real local timestamp among event rows.
    pub min_ts: Option<u64>,
    /// Largest real local timestamp among event rows.
    pub max_ts: Option<u64>,
}

fn widen<T: Ord + Copy>(min: &mut Option<T>, max: &mut Option<T>, v: T) {
    *min = Some(min.map_or(v, |m| m.min(v)));
    *max = Some(max.map_or(v, |m| m.max(v)));
}

impl SegmentStats {
    /// Fold one packet identity into the ranges.
    pub fn note_packet(&mut self, packet: PacketId) {
        widen(&mut self.min_origin, &mut self.max_origin, packet.origin.0);
        widen(&mut self.min_seqno, &mut self.max_seqno, packet.seqno);
    }

    /// Fold one event-row timestamp into the ranges (`TS_NONE` ignored).
    pub fn note_ts(&mut self, ts: u64) {
        if ts != TS_NONE {
            widen(&mut self.min_ts, &mut self.max_ts, ts);
        }
    }

    /// Could a row with `origin` live in this segment?
    pub fn admits_origin(&self, origin: u16) -> bool {
        match (self.min_origin, self.max_origin) {
            (Some(lo), Some(hi)) => lo <= origin && origin <= hi,
            _ => false,
        }
    }

    /// Could a row with a seqno in `[lo, hi]` live in this segment?
    pub fn admits_seqno(&self, lo: u32, hi: u32) -> bool {
        match (self.min_seqno, self.max_seqno) {
            (Some(smin), Some(smax)) => smin <= hi && lo <= smax,
            _ => false,
        }
    }

    /// Could a timestamped event row in `[lo, hi]` live in this segment?
    pub fn admits_ts(&self, lo: u64, hi: u64) -> bool {
        match (self.min_ts, self.max_ts) {
            (Some(tmin), Some(tmax)) => tmin <= hi && lo <= tmax,
            _ => false,
        }
    }
}

/// One segment's manifest entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// File name (relative to the store directory), e.g. `seg-000003.refill`.
    pub file: String,
    /// Durable byte length — the valid-block prefix as of the last sync
    /// or recovery.
    pub committed_len: u64,
    /// Blocks in the committed prefix.
    pub blocks: u64,
    /// Event rows in the committed prefix.
    pub events: u64,
    /// Report rows in the committed prefix.
    pub reports: u64,
    /// Pushdown metadata.
    #[serde(default)]
    pub stats: SegmentStats,
}

/// The manifest document.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version.
    pub version: u32,
    /// Listed segments, in store order.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// Load the manifest from `dir`.
    ///
    /// Returns `Ok(None)` when the file is absent *or unparseable*: the
    /// block scan is the ground truth, so a damaged manifest downgrades
    /// to "adopt whatever valid segments are on disk" rather than an
    /// error.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, StoreError> {
        Self::load_with(dir, &OsVfs)
    }

    /// [`Manifest::load`] through an explicit [`Vfs`].
    pub fn load_with(dir: &Path, vfs: &dyn Vfs) -> Result<Option<Manifest>, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let bytes = match vfs.read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        Ok(serde_json::from_slice(&bytes).ok())
    }

    /// Persist the manifest atomically: tmp + fsync + rename + dir fsync.
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        self.save_with(dir, &OsVfs)
    }

    /// [`Manifest::save`] through an explicit [`Vfs`].
    pub fn save_with(&self, dir: &Path, vfs: &dyn Vfs) -> Result<(), StoreError> {
        let bytes = serde_json::to_vec_pretty(self).map_err(|e| StoreError::Codec {
            detail: format!("encoding manifest: {e}"),
        })?;
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut f = vfs.create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        vfs.rename(&tmp, &dir.join(MANIFEST_FILE))?;
        // Make the rename itself durable. Directory fsync is
        // platform-sensitive; failure to open the directory is not fatal
        // on filesystems that disallow it.
        let _ = vfs.sync_dir(dir);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::NodeId;

    #[test]
    fn stats_ranges_widen_and_admit() {
        let mut s = SegmentStats::default();
        assert!(!s.admits_origin(3), "empty stats admit nothing");
        assert!(!s.admits_seqno(0, u32::MAX));
        assert!(!s.admits_ts(0, u64::MAX));
        s.note_packet(PacketId::new(NodeId(3), 10));
        s.note_packet(PacketId::new(NodeId(7), 2));
        s.note_ts(500);
        s.note_ts(TS_NONE); // ignored
        assert!(s.admits_origin(3) && s.admits_origin(5) && s.admits_origin(7));
        assert!(!s.admits_origin(2) && !s.admits_origin(8));
        assert!(s.admits_seqno(0, 2) && s.admits_seqno(10, 99) && s.admits_seqno(5, 6));
        assert!(!s.admits_seqno(11, 99) && !s.admits_seqno(0, 1));
        assert!(s.admits_ts(500, 500) && !s.admits_ts(0, 499) && !s.admits_ts(501, u64::MAX));
        assert_eq!(s.min_ts, Some(500), "TS_NONE must not widen the range");
        assert_eq!(s.max_ts, Some(500));
    }

    #[test]
    fn save_load_roundtrip_and_garbage_downgrades() {
        let dir = std::env::temp_dir().join(format!("refill-store-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = Manifest {
            version: MANIFEST_VERSION,
            segments: vec![SegmentMeta {
                file: "seg-000001.refill".into(),
                committed_len: 36,
                blocks: 1,
                events: 1,
                reports: 0,
                stats: SegmentStats::default(),
            }],
        };
        m.save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m));
        std::fs::write(dir.join(MANIFEST_FILE), b"{not json").unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
