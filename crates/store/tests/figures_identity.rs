//! End-to-end figure identity: persist a CitySee campaign's events and
//! reports (with diagnosis sidecars) into a segment store, reopen it, and
//! rebuild Figures 4, 5 and 8 purely from the stored rows — the CSVs must
//! be byte-for-byte identical to the ones computed from the in-memory
//! analysis. Also pins the template round trip on real reconstructed
//! flows: every stored report rehydrates to exactly the report it came
//! from.

use citysee::figures::{
    fig4_from_records, fig4_source_view, fig5_from_records, fig5_loss_positions,
    fig8_from_records, fig8_spatial_received, render_fig8_csv, render_loss_points_csv,
};
use citysee::{analyze, run_scenario, PacketRecord, Scenario};
use eventlog::merge::merge_logs_store;
use eventlog::{PackedEvent, PacketFate};
use netsim::SimTime;
use refill::{CtpVocabulary, Reconstructor};
use refill_store::{ReportRow, SegmentStore, Sidecar};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "refill-store-figures-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn figures_from_store_match_in_memory_analysis_byte_for_byte() {
    let scenario = Scenario::small();
    let campaign = run_scenario(&scenario);
    let analysis = analyze(&campaign);

    // Rebuild each record's report the same way the analysis did (same
    // vocabulary, same sink), and persist it with its diagnosis sidecar.
    let (_, _, _, config) = scenario.build();
    let recon = Reconstructor::new(CtpVocabulary {
        log_origin: config.log_origin,
        log_enqueue: config.log_enqueue,
    })
    .with_sink(campaign.topology.sink());
    let index = campaign.merged.packet_index();
    let rows: Vec<ReportRow> = analysis
        .records
        .iter()
        .map(|r| {
            let events = index.get(r.packet).unwrap_or(&[]);
            let report = recon.reconstruct_packet(r.packet, events);
            let row = ReportRow::from_report(
                &report,
                Some(Sidecar {
                    est_time: r.est_time,
                    diagnosis: r.diagnosis.clone(),
                    fate: Some(r.fate),
                }),
            );
            assert_eq!(
                row.report(),
                report,
                "node-abstract template must rehydrate exactly"
            );
            row
        })
        .collect();

    let columns = merge_logs_store(&campaign.collected);
    let event_rows: Vec<(PackedEvent, u64)> = columns
        .records()
        .iter()
        .copied()
        .zip(columns.ts_column().iter().copied())
        .collect();

    let tmp = TempDir::new();
    let (store, _) = SegmentStore::open(&tmp.0).unwrap();
    let mut store = store;
    store.append_events(&event_rows).unwrap();
    store.append_reports(&rows).unwrap();
    store.sync().unwrap();
    drop(store);

    // Reopen cold, as `refill query` would, and rebuild the per-packet
    // records from sidecars alone.
    let (store, _) = SegmentStore::open(&tmp.0).unwrap();
    let stored: Vec<PacketRecord> = store
        .latest_reports()
        .unwrap()
        .into_iter()
        .map(|row| {
            let sidecar = row.sidecar.expect("rows were stored with sidecars");
            PacketRecord {
                packet: row.packet,
                est_time: sidecar.est_time,
                diagnosis: sidecar.diagnosis,
                fate: sidecar
                    .fate
                    .unwrap_or(PacketFate::Delivered { at: SimTime::ZERO }),
            }
        })
        .collect();

    assert_eq!(
        render_loss_points_csv(&fig4_from_records(&stored)),
        render_loss_points_csv(&fig4_source_view(&analysis)),
        "Figure 4 from the store must match the in-memory analysis"
    );
    assert_eq!(
        render_loss_points_csv(&fig5_from_records(&stored)),
        render_loss_points_csv(&fig5_loss_positions(&analysis)),
        "Figure 5 from the store must match the in-memory analysis"
    );
    assert_eq!(
        render_fig8_csv(&fig8_from_records(&stored, &campaign.topology)),
        render_fig8_csv(&fig8_spatial_received(&campaign, &analysis)),
        "Figure 8 from the store must match the in-memory analysis"
    );

    // The stored event rows survive byte-identically too.
    assert_eq!(store.events().unwrap(), event_rows);
}
