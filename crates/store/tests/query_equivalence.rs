//! Query/memory equivalence: for any soup of local logs, every predicate
//! evaluated by the store (with segment pushdown over the manifest
//! metadata) returns byte-identical rows to an independent in-memory
//! filter over the merged event columns and the `reconstruct_log` reports
//! the store was fed. Pushdown may only skip work, never answers.

use eventlog::logger::{LocalLog, LogEntry};
use eventlog::merge::merge_logs_store;
use eventlog::{Event, EventKind, PackedEvent, PacketId, TS_NONE};
use netsim::NodeId;
use proptest::prelude::*;
use refill::provenance::EntryOrigin;
use refill::{CtpVocabulary, DiagnosedCause, Diagnoser, Reconstructor};
use refill_store::{Query, ReportRow, SegmentStore, Sidecar};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NONCE: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "refill-store-queryeq-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One generated log entry, before grouping into per-node logs.
#[derive(Debug, Clone, Copy)]
struct Soup {
    node: u16,
    origin: u16,
    seqno: u32,
    kind: u8,
    ts: Option<u64>,
}

fn soup_strategy() -> impl Strategy<Value = Vec<Soup>> {
    prop::collection::vec(
        (1u16..=4, 1u16..=3, 0u32..8, 0u8..5, prop::option::of(0u64..10_000)).prop_map(
            |(node, origin, seqno, kind, ts)| Soup {
                node,
                origin,
                seqno,
                kind,
                ts,
            },
        ),
        1..60,
    )
}

fn to_logs(soup: &[Soup]) -> Vec<LocalLog> {
    let mut logs: Vec<LocalLog> = (1u16..=4)
        .map(|n| LocalLog {
            node: NodeId(n),
            entries: Vec::new(),
        })
        .collect();
    for s in soup {
        let packet = PacketId::new(NodeId(s.origin), s.seqno);
        let next = NodeId(if s.node == 4 { 1 } else { s.node + 1 });
        let kind = match s.kind {
            0 => EventKind::Origin,
            1 => EventKind::Trans { to: next },
            2 => EventKind::Recv { from: next },
            3 => EventKind::AckRecvd { to: next },
            _ => EventKind::Enqueue,
        };
        logs[usize::from(s.node) - 1].entries.push(LogEntry {
            event: Event::new(NodeId(s.node), kind, packet),
            local_ts: s.ts,
        });
    }
    logs
}

/// Independent oracle for the event side of a query. Deliberately written
/// against the unpacked event, not the store's own matcher.
fn oracle_events(rows: &[(PackedEvent, u64)], q: &Query) -> Vec<(PackedEvent, u64)> {
    if q.cause.is_some() || q.disposition.is_some() {
        return Vec::new();
    }
    rows.iter()
        .filter(|(rec, ts)| {
            let event = rec.unpack();
            if let Some(origin) = q.origin {
                if event.packet.origin != origin {
                    return false;
                }
            }
            if let Some((lo, hi)) = q.seqno {
                if !(lo..=hi).contains(&event.packet.seqno) {
                    return false;
                }
            }
            if let Some((lo, hi)) = q.ts {
                if *ts == TS_NONE || !(lo..=hi).contains(ts) {
                    return false;
                }
            }
            true
        })
        .copied()
        .collect()
}

/// Independent oracle for the report side of a query.
fn oracle_reports(rows: &[ReportRow], q: &Query) -> Vec<ReportRow> {
    if q.ts.is_some() {
        return Vec::new();
    }
    rows.iter()
        .filter(|row| {
            if let Some(origin) = q.origin {
                if row.packet.origin != origin {
                    return false;
                }
            }
            if let Some((lo, hi)) = q.seqno {
                if !(lo..=hi).contains(&row.packet.seqno) {
                    return false;
                }
            }
            if let Some(cause) = q.cause {
                let got = row.sidecar.as_ref().and_then(|s| s.diagnosis.cause);
                if got != Some(cause) {
                    return false;
                }
            }
            if let Some(disposition) = q.disposition {
                if !row.report().origins.contains(&disposition) {
                    return false;
                }
            }
            true
        })
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32),
        ..ProptestConfig::default()
    })]

    #[test]
    fn store_queries_match_in_memory_filters(
        soup in soup_strategy(),
        chunk in 1usize..16,
        q_origin in prop::option::of(1u16..=3),
        q_seqno in prop::option::of((0u32..8, 0u32..8)),
        q_ts in prop::option::of((0u64..10_000, 0u64..10_000)),
    ) {
        let logs = to_logs(&soup);
        let columns = merge_logs_store(&logs);
        let event_rows: Vec<(PackedEvent, u64)> = columns
            .records()
            .iter()
            .copied()
            .zip(columns.ts_column().iter().copied())
            .collect();
        let reports =
            Reconstructor::new(CtpVocabulary::table2()).reconstruct_log(&columns.to_merged());
        let diagnoser = Diagnoser::new();
        let report_rows: Vec<ReportRow> = reports
            .iter()
            .map(|r| {
                let diagnosis = diagnoser.diagnose(r, None);
                ReportRow::from_report(
                    r,
                    Some(Sidecar {
                        est_time: None,
                        diagnosis,
                        fate: None,
                    }),
                )
            })
            .collect();

        // Small roll so the soup spreads over several segments and
        // pushdown has something to skip.
        let tmp = TempDir::new();
        let (store, _) = SegmentStore::open(&tmp.0).unwrap();
        let mut store = store.with_roll_bytes(256);
        for rows in event_rows.chunks(chunk) {
            store.append_events(rows).unwrap();
        }
        for rows in report_rows.chunks(chunk.div_ceil(2)) {
            store.append_reports(rows).unwrap();
        }
        store.sync().unwrap();

        // Survive a reopen too: queries run against the recovered store.
        drop(store);
        let (store, _) = SegmentStore::open(&tmp.0).unwrap();

        let mut queries = vec![
            Query::default(),
            Query { origin: q_origin.map(NodeId), ..Query::default() },
            Query {
                seqno: q_seqno.map(|(a, b)| (a.min(b), a.max(b))),
                ..Query::default()
            },
            Query { ts: q_ts.map(|(a, b)| (a.min(b), a.max(b))), ..Query::default() },
            Query {
                origin: q_origin.map(NodeId),
                seqno: q_seqno.map(|(a, b)| (a.min(b), a.max(b))),
                ts: q_ts.map(|(a, b)| (a.min(b), a.max(b))),
                ..Query::default()
            },
            Query { disposition: Some(EntryOrigin::Observed), ..Query::default() },
            Query { disposition: Some(EntryOrigin::InterForced), ..Query::default() },
        ];
        // Every diagnosed cause present in the data.
        let mut causes: Vec<DiagnosedCause> = Vec::new();
        for cause in report_rows
            .iter()
            .filter_map(|r| r.sidecar.as_ref().and_then(|s| s.diagnosis.cause))
        {
            if !causes.contains(&cause) {
                causes.push(cause);
            }
        }
        for cause in causes {
            queries.push(Query { cause: Some(cause), ..Query::default() });
        }

        for q in &queries {
            let out = store.query(q).unwrap();
            prop_assert_eq!(&out.events, &oracle_events(&event_rows, q));
            prop_assert_eq!(&out.reports, &oracle_reports(&report_rows, q));
            prop_assert_eq!(
                out.stats.segments_scanned + out.stats.segments_skipped,
                out.stats.segments_total
            );
            prop_assert_eq!(out.stats.event_rows_matched as usize, out.events.len());
            prop_assert_eq!(out.stats.report_rows_matched as usize, out.reports.len());
        }

        // Compaction changes layout, not answers: events become ts-ordered
        // (a permutation) and the latest report per packet survives.
        let mut store = store;
        let latest_before = store.latest_reports().unwrap();
        store.compact().unwrap();
        prop_assert_eq!(store.latest_reports().unwrap(), latest_before);
        let mut before_sorted = event_rows.clone();
        before_sorted.sort_by_key(sort_key);
        let mut after_sorted = store.events().unwrap();
        after_sorted.sort_by_key(sort_key);
        prop_assert_eq!(after_sorted, before_sorted);
    }
}

fn sort_key(row: &(PackedEvent, u64)) -> (u64, Vec<u8>) {
    (row.1, row.0.to_bytes().to_vec())
}
