//! Crash-recovery property: however many bytes of a store's segment file
//! survive a crash, reopening recovers exactly the longest prefix of
//! whole, CRC-valid blocks — no panic, no error, no partial rows — and a
//! second reopen is a no-op. Appends after recovery continue cleanly.

use eventlog::{Event, EventKind, PackedEvent, PacketId, TS_NONE};
use netsim::NodeId;
use proptest::prelude::*;
use refill_store::{segment, ReportRow, SegmentStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NONCE: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "refill-store-recovery-{tag}-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn event_row(origin: u16, seqno: u32, ts: u64) -> (PackedEvent, u64) {
    let p = PacketId::new(NodeId(origin), seqno);
    (
        PackedEvent::pack(&Event::new(NodeId(origin), EventKind::Origin, p)),
        ts,
    )
}

fn report_rows() -> Vec<ReportRow> {
    // A real single-hop flow, reconstructed rather than hand-built, so the
    // persisted template exercises the same code paths production rows do.
    use eventlog::logger::{LocalLog, LogEntry};
    use eventlog::merge::merge_logs;
    use refill::{CtpVocabulary, Reconstructor};
    let p = PacketId::new(NodeId(1), 0);
    let log = LocalLog {
        node: NodeId(1),
        entries: vec![
            LogEntry {
                event: Event::new(NodeId(1), EventKind::Origin, p),
                local_ts: Some(10),
            },
            LogEntry {
                event: Event::new(NodeId(1), EventKind::Trans { to: NodeId(2) }, p),
                local_ts: Some(20),
            },
        ],
    };
    let merged = merge_logs(&[log]);
    let reports = Reconstructor::new(CtpVocabulary::table2()).reconstruct_log(&merged);
    assert!(!reports.is_empty());
    reports
        .iter()
        .map(|r| ReportRow::from_report(r, None))
        .collect()
}

/// The append schedule every proptest case replays: five event blocks with
/// a report block in the middle. Returns (event rows per block, reports).
fn schedule() -> (Vec<Vec<(PackedEvent, u64)>>, Vec<ReportRow>) {
    let mut blocks = Vec::new();
    for b in 0u32..5 {
        let mut rows = Vec::new();
        for i in 0..8u32 {
            let seq = b * 8 + i;
            let ts = if seq % 7 == 3 {
                TS_NONE
            } else {
                u64::from(seq) * 100
            };
            rows.push(event_row(1 + (seq % 3) as u16, seq, ts));
        }
        blocks.push(rows);
    }
    (blocks, report_rows())
}

/// Build the store, tracking each block's end offset and the cumulative
/// row counts durable at that boundary.
fn build(dir: &std::path::Path) -> (Vec<(u64, usize, usize)>, u64) {
    let (store, _) = SegmentStore::open(dir).unwrap();
    let mut store = store;
    let (event_blocks, reports) = schedule();
    let mut boundaries = Vec::new();
    let mut offset = 0u64;
    let mut events = 0usize;
    let mut nreports = 0usize;
    for (i, rows) in event_blocks.iter().enumerate() {
        store.append_events(rows).unwrap();
        offset += segment::encode_events(rows).len() as u64;
        events += rows.len();
        boundaries.push((offset, events, nreports));
        if i == 2 {
            store.append_reports(&reports).unwrap();
            offset += segment::encode_reports(&reports).unwrap().len() as u64;
            nreports += reports.len();
            boundaries.push((offset, events, nreports));
        }
    }
    store.sync().unwrap();
    assert_eq!(store.segments().len(), 1, "default roll keeps one segment");
    assert_eq!(store.segments()[0].committed_len, offset);
    (boundaries, offset)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64),
        ..ProptestConfig::default()
    })]

    #[test]
    fn truncate_anywhere_reopen_recovers_longest_durable_prefix(cut_frac in 0.0f64..=1.0) {
        let tmp = TempDir::new("cut");
        let (boundaries, total_len) = build(&tmp.0);
        let cut = (cut_frac * total_len as f64).round() as u64;

        // Reference contents of the intact store.
        let (full, _) = SegmentStore::open(&tmp.0).unwrap();
        let full_events = full.events().unwrap();
        let full_reports = full.reports().unwrap();
        drop(full);

        // Simulate the crash: everything past `cut` never reached disk.
        let seg = tmp.0.join(&boundaries_file(&tmp.0));
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (want_events, want_reports, durable) = boundaries
            .iter()
            .rev()
            .find(|(end, _, _)| *end <= cut)
            .map_or((0, 0, 0), |&(end, e, r)| (e, r, end));

        let (store, report) = SegmentStore::open(&tmp.0).unwrap();
        prop_assert_eq!(store.events().unwrap(), full_events[..want_events].to_vec());
        prop_assert_eq!(store.reports().unwrap(), full_reports[..want_reports].to_vec());
        prop_assert_eq!(report.torn_bytes, cut - durable);
        prop_assert_eq!(report.truncated_segments, usize::from(cut != durable));
        prop_assert_eq!(store.segments()[0].committed_len, durable);
        drop(store);

        // Recovery is idempotent: the second open finds nothing to fix.
        let (store, report) = SegmentStore::open(&tmp.0).unwrap();
        prop_assert_eq!(report.torn_bytes, 0);
        prop_assert_eq!(report.truncated_segments, 0);

        // Life goes on: the store accepts appends after recovery.
        let mut store = store;
        let extra = event_row(9, 999, 1234);
        store.append_events(&[extra]).unwrap();
        store.sync().unwrap();
        drop(store);
        let (store, _) = SegmentStore::open(&tmp.0).unwrap();
        let mut want = full_events[..want_events].to_vec();
        want.push(extra);
        prop_assert_eq!(store.events().unwrap(), want);
    }
}

/// The single segment file's name (recovery must not depend on us knowing
/// the id scheme, but the test needs the path to truncate).
fn boundaries_file(dir: &std::path::Path) -> String {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".refill"))
        .collect();
    names.sort();
    assert_eq!(names.len(), 1);
    names.remove(0)
}

/// Crashing mid-`sync` can leave the manifest behind the file (extra whole
/// blocks past `committed_len`). Scan is ground truth: they are kept.
#[test]
fn manifest_behind_file_keeps_scanned_blocks() {
    let tmp = TempDir::new("stale-manifest");
    let (_, total_len) = build(&tmp.0);
    let (full, _) = SegmentStore::open(&tmp.0).unwrap();
    let full_events = full.events().unwrap();
    let full_reports = full.reports().unwrap();
    drop(full);

    // Rewind the manifest's committed_len as if the last sync never
    // happened, leaving valid blocks past the recorded boundary.
    let manifest_path = tmp.0.join("MANIFEST.json");
    let text = std::fs::read_to_string(&manifest_path).unwrap();
    let mut doc: serde_json::Value = serde_json::from_str(&text).unwrap();
    doc["segments"][0]["committed_len"] = serde_json::json!(8);
    std::fs::write(&manifest_path, serde_json::to_vec(&doc).unwrap()).unwrap();

    let (store, report) = SegmentStore::open(&tmp.0).unwrap();
    assert_eq!(store.events().unwrap(), full_events);
    assert_eq!(store.reports().unwrap(), full_reports);
    assert_eq!(report.torn_bytes, 0);
    assert_eq!(store.segments()[0].committed_len, total_len);
}
