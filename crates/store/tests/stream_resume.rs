//! Checkpointed streaming: a `refill stream --store` run killed at any
//! record boundary resumes from the store's durable prefix and finishes
//! with reports byte-identical to an uninterrupted run (which is itself
//! byte-identical to batch reconstruction).

use eventlog::frame::{encode_records, NodeRecord};
use eventlog::logger::{LocalLog, LogEntry};
use eventlog::merge::merge_logs;
use eventlog::watermark::Lateness;
use eventlog::{Event, EventKind, PacketId, TS_NONE};
use netsim::NodeId;
use proptest::prelude::*;
use refill::{CtpVocabulary, PacketReport, Reconstructor};
use refill_store::{SegmentStore, StoreCheckpoint};
use refill_stream::{
    run_stream, run_stream_checkpointed, CheckpointSink, DriverConfig, StreamConfig,
    StreamReconstructor,
};
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NONCE: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "refill-store-resume-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn n(i: u16) -> NodeId {
    NodeId(i)
}

fn recon() -> Reconstructor {
    Reconstructor::new(CtpVocabulary::table2())
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        lane_capacity: 4,
        lateness: Lateness {
            records: 2,
            micros: 20_000,
        },
    }
}

fn driver_config() -> DriverConfig {
    DriverConfig {
        chunk_bytes: 64,
        channel_batches: 2,
        poll_every: 3,
        drain_batches: 0,
    }
}

/// A small day: packets flow 1 -> 2 -> 3, interleaved round-robin across
/// the three nodes' logs, with node 2 logging no timestamps.
fn day_records(packets: u32) -> (Vec<LocalLog>, Vec<NodeRecord>) {
    let mut logs: Vec<LocalLog> = (1u16..=3)
        .map(|i| LocalLog {
            node: n(i),
            entries: Vec::new(),
        })
        .collect();
    for seq in 0..packets {
        let p = PacketId::new(n(1), seq);
        let ts = u64::from(seq) * 10_000;
        logs[0].entries.push(LogEntry {
            event: Event::new(n(1), EventKind::Trans { to: n(2) }, p),
            local_ts: Some(ts),
        });
        if seq % 3 != 1 {
            logs[0].entries.push(LogEntry {
                event: Event::new(n(1), EventKind::AckRecvd { to: n(2) }, p),
                local_ts: Some(ts + 5),
            });
        }
        if seq % 4 != 2 {
            logs[1].entries.push(LogEntry {
                event: Event::new(n(2), EventKind::Recv { from: n(1) }, p),
                local_ts: None,
            });
            logs[1].entries.push(LogEntry {
                event: Event::new(n(2), EventKind::Trans { to: n(3) }, p),
                local_ts: None,
            });
            logs[2].entries.push(LogEntry {
                event: Event::new(n(3), EventKind::Recv { from: n(2) }, p),
                local_ts: Some(ts + 777),
            });
        }
    }
    let mut records = Vec::new();
    let mut idx = [0usize; 3];
    loop {
        let mut progressed = false;
        for lane in 0..3 {
            if idx[lane] < logs[lane].entries.len() {
                records.push(NodeRecord::new(logs[lane].node, logs[lane].entries[idx[lane]]));
                idx[lane] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    (logs, records)
}

fn rehydrated_sorted(store: &SegmentStore) -> Vec<PacketReport> {
    store
        .latest_reports()
        .unwrap()
        .iter()
        .map(|row| row.report())
        .collect()
}

fn sorted_by_packet(mut reports: Vec<PacketReport>) -> Vec<PacketReport> {
    reports.sort_by_key(|r| r.packet);
    reports
}

#[test]
fn checkpointed_run_matches_plain_run_and_store_holds_everything() {
    let (logs, records) = day_records(8);
    let bytes = encode_records(records.iter());

    let mut plain = StreamReconstructor::with_config(recon(), stream_config());
    let plain_summary =
        run_stream(Cursor::new(&bytes), &mut plain, driver_config(), |_| {}).unwrap();

    let tmp = TempDir::new();
    let (store, _) = SegmentStore::open(&tmp.0).unwrap();
    let mut ckpt = StoreCheckpoint::new(store);
    let mut stream = StreamReconstructor::with_config(recon(), stream_config());
    let summary = run_stream_checkpointed(
        Cursor::new(&bytes),
        &mut stream,
        driver_config(),
        |_| {},
        &mut ckpt,
    )
    .unwrap();
    let store = ckpt.finish().unwrap();

    assert_eq!(summary.reports, plain_summary.reports);
    assert_eq!(
        summary.reports,
        recon().reconstruct_log(&merge_logs(&logs)),
        "checkpointing must not disturb the streaming/batch contract"
    );

    // The store holds the entire absorbed record sequence, in order, with
    // timestamps preserved (TS_NONE for node 2's untimed entries).
    let rows = store.events().unwrap();
    assert_eq!(rows.len(), records.len());
    for (row, rec) in rows.iter().zip(&records) {
        assert_eq!(row.0.unpack(), rec.entry.event);
        assert_eq!(row.1, rec.entry.local_ts.unwrap_or(TS_NONE));
    }
    // And its converged report view rehydrates to the final reports.
    assert_eq!(
        rehydrated_sorted(&store),
        sorted_by_packet(summary.reports)
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(24),
        ..ProptestConfig::default()
    })]

    /// Kill a checkpointed run after `k` absorbed records (no final
    /// flush, no final sync — only what report-emission syncs made
    /// durable survives), then resume over the same input. The resumed
    /// run's final reports are byte-identical to an uninterrupted run.
    #[test]
    fn killed_run_resumes_byte_identical(
        packets in 1u32..10,
        kill_frac in 0.0f64..=1.0,
        cadence in 1usize..6,
    ) {
        let (logs, records) = day_records(packets);
        let bytes = encode_records(records.iter());
        let uninterrupted = recon().reconstruct_log(&merge_logs(&logs));
        let k = (kill_frac * records.len() as f64).round() as usize;

        let tmp = TempDir::new();

        // Phase 1: the doomed run. Mirror the driver's hook order by
        // hand so the "kill" can land between any two records.
        {
            let (store, _) = SegmentStore::open(&tmp.0).unwrap();
            let mut ckpt = StoreCheckpoint::new(store);
            let mut stream = StreamReconstructor::with_config(recon(), stream_config());
            for (i, rec) in records[..k].iter().enumerate() {
                ckpt.on_record(rec).unwrap();
                stream.ingest(*rec);
                if (i + 1) % cadence == 0 {
                    let emitted = stream.poll();
                    if !emitted.is_empty() {
                        ckpt.on_reports(&emitted).unwrap();
                        CheckpointSink::sync(&mut ckpt).unwrap();
                    }
                }
            }
            // Killed here: ckpt dropped without finish(); buffered rows
            // since the last sync are lost, as in a real crash.
        }

        // Phase 2: resume. Replay the durable prefix into a fresh
        // reconstructor, then drive the full input again.
        let (store, _) = SegmentStore::open(&tmp.0).unwrap();
        let mut ckpt = StoreCheckpoint::new(store);
        let durable = ckpt.store().total_events();
        prop_assert!(durable <= k as u64, "store cannot hold unabsorbed records");
        let mut stream = StreamReconstructor::with_config(recon(), stream_config());
        for rec in ckpt.resume_records().unwrap() {
            stream.ingest(rec);
        }
        let summary = run_stream_checkpointed(
            Cursor::new(&bytes),
            &mut stream,
            driver_config(),
            |_| {},
            &mut ckpt,
        )
        .unwrap();
        let store = ckpt.finish().unwrap();

        prop_assert_eq!(&summary.reports, &uninterrupted);
        prop_assert_eq!(
            format!("{:#?}", &summary.reports),
            format!("{uninterrupted:#?}")
        );

        // The resumed store converges to the full record sequence too.
        let rows = store.events().unwrap();
        prop_assert_eq!(rows.len(), records.len());
        for (row, rec) in rows.iter().zip(&records) {
            prop_assert_eq!(row.0.unpack(), rec.entry.event);
            prop_assert_eq!(row.1, rec.entry.local_ts.unwrap_or(TS_NONE));
        }
        prop_assert_eq!(
            rehydrated_sorted(&store),
            sorted_by_packet(summary.reports)
        );
    }
}
