//! Simulator substrate benchmarks: scheduler throughput, link-table
//! construction, routing convergence, and full campaign-days per second.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::link::{LinkModel, LinkModelConfig, NoModulation};
use netsim::topology::Layout;
use netsim::{RngFactory, Scheduler, SimTime, Topology};
use protocols::ctp::{true_path_costs, RoutingState};
use protocols::schedule::FaultSchedule;
use protocols::sim::Simulator;
use protocols::SimConfig;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [1_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = Scheduler::new();
                // Interleaved schedule/pop pattern typical of the simulator.
                for i in 0..n {
                    s.schedule(SimTime::from_micros(i * 7 % 1000 + i), i);
                    if i % 2 == 0 {
                        black_box(s.pop());
                    }
                }
                while black_box(s.pop()).is_some() {}
            });
        });
    }
    group.finish();
}

fn bench_link_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_table_build");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [100usize, 300, 1200] {
        let factory = RngFactory::new(5);
        let side = 45.0 * (n as f64).sqrt();
        let topo = Topology::generate(n, side, Layout::JitteredGrid, &factory);
        group.bench_with_input(BenchmarkId::from_parameter(n), &topo, |b, topo| {
            b.iter(|| {
                black_box(LinkModel::build_table(
                    topo,
                    &LinkModelConfig::default(),
                    &factory,
                ))
            });
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [100usize, 300] {
        let factory = RngFactory::new(5);
        let side = 45.0 * (n as f64).sqrt();
        let topo = Topology::generate(n, side, Layout::JitteredGrid, &factory);
        let table = LinkModel::build_table(&topo, &LinkModelConfig::default(), &factory);
        let links = LinkModel::new(table, Box::new(NoModulation));
        group.bench_with_input(BenchmarkId::new("dijkstra", n), &n, |b, _| {
            b.iter(|| black_box(true_path_costs(&topo, &links, SimTime::ZERO)));
        });
        group.bench_with_input(BenchmarkId::new("converge", n), &n, |b, _| {
            b.iter(|| black_box(RoutingState::converged(&topo, &links, SimTime::ZERO)));
        });
    }
    group.finish();
}

fn bench_full_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_campaign");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [60usize, 150] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let factory = RngFactory::new(5);
                let side = 45.0 * (n as f64).sqrt();
                let topo = Topology::generate(n, side, Layout::JitteredGrid, &factory);
                let table = LinkModel::build_table(&topo, &LinkModelConfig::default(), &factory);
                let config = SimConfig {
                    duration: SimTime::from_secs(120),
                    ..SimConfig::default()
                };
                let sim = Simulator::new(topo, table, FaultSchedule::default(), config);
                black_box(sim.run().truth.events.len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_link_table,
    bench_routing,
    bench_full_sim
);
criterion_main!(benches);
