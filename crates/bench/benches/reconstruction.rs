//! End-to-end reconstruction benchmarks on a simulated campaign: merge,
//! sequential vs rayon vs crossbeam drivers, and diagnosis.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use citysee::{run_scenario, Scenario};
use eventlog::merge_logs;
use refill::diagnose::Diagnoser;
use refill::parallel::{reconstruct_crossbeam, reconstruct_rayon};
use refill::trace::{CtpVocabulary, Reconstructor};

fn bench_scenario() -> Scenario {
    Scenario {
        days: 3,
        ..Scenario::small()
    }
}

fn bench_merge(c: &mut Criterion) {
    let campaign = run_scenario(&bench_scenario());
    let total: usize = campaign.collected.iter().map(|l| l.len()).sum();
    let mut group = c.benchmark_group("merge");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("k_way_merge", |b| {
        b.iter(|| black_box(merge_logs(&campaign.collected)))
    });
    group.finish();
}

fn bench_reconstruct_drivers(c: &mut Criterion) {
    let campaign = run_scenario(&bench_scenario());
    let recon = Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink());
    let packets = campaign.merged.packet_ids().len() as u64;

    let mut group = c.benchmark_group("reconstruct_drivers");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(packets));
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(recon.reconstruct_log(&campaign.merged)))
    });
    group.bench_function("rayon", |b| {
        b.iter(|| black_box(reconstruct_rayon(&recon, &campaign.merged)))
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("crossbeam", workers),
            &workers,
            |b, &w| {
                b.iter(|| black_box(reconstruct_crossbeam(&recon, &campaign.merged, w)))
            },
        );
    }
    group.finish();
}

fn bench_diagnose(c: &mut Criterion) {
    let campaign = run_scenario(&bench_scenario());
    let recon = Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink());
    let reports = recon.reconstruct_log(&campaign.merged);
    let diagnoser = Diagnoser::new().with_sink(campaign.topology.sink());
    let mut group = c.benchmark_group("diagnose");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(reports.len() as u64));
    group.bench_function("classify_all", |b| {
        b.iter(|| {
            black_box(
                reports
                    .iter()
                    .filter(|r| diagnoser.diagnose(r, None).delivered)
                    .count(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_merge, bench_reconstruct_drivers, bench_diagnose);
criterion_main!(benches);
