//! End-to-end reconstruction benchmarks on a simulated campaign: merge,
//! grouping (hashmap copy vs zero-copy index), the per-packet hot path,
//! sequential vs rayon vs crossbeam drivers, and diagnosis.

use bench::synth_merge_logs;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use citysee::{run_scenario, Scenario};
use eventlog::columnar::ColumnarIndex;
use eventlog::{merge_logs, merge_logs_kway, merge_logs_partitioned, merge_logs_store};
use refill::diagnose::Diagnoser;
use refill::parallel::{
    reconstruct_columnar, reconstruct_crossbeam, reconstruct_fused, reconstruct_rayon,
    reconstruct_rayon_cached,
};
use refill::sigcache::SigCache;
use refill::trace::{CtpVocabulary, Reconstructor};

fn bench_scenario() -> Scenario {
    Scenario {
        days: 3,
        ..Scenario::small()
    }
}

/// One day at the standard evaluation scale — the "CitySee day" shape the
/// grouping bench measures (many small per-packet groups in one big log).
fn citysee_day() -> Scenario {
    Scenario {
        name: "citysee-day".into(),
        days: 1,
        ..Scenario::standard()
    }
}

fn bench_merge(c: &mut Criterion) {
    let campaign = run_scenario(&bench_scenario());
    let total: usize = campaign.collected.iter().map(|l| l.len()).sum();
    let mut group = c.benchmark_group("merge");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("k_way_merge", |b| {
        b.iter(|| black_box(merge_logs(&campaign.collected)))
    });
    // Fan-in sweep on synthetic sorted logs at a fixed total event count:
    // K = 1200 is the paper's CitySee deployment scale, where the old
    // cursor scan paid ~K compares per event and the loser tree pays
    // ~log2(K) ≈ 10. `partitioned` adds the rayon time-partitioned
    // front-end on top of the same loser tree.
    const SWEEP_EVENTS: usize = 240_000;
    for k in [60usize, 300, 1200] {
        let logs = synth_merge_logs(k, SWEEP_EVENTS);
        let events: usize = logs.iter().map(|l| l.len()).sum();
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::new("loser_tree", k), &logs, |b, logs| {
            b.iter(|| black_box(merge_logs_kway(logs)))
        });
        group.bench_with_input(BenchmarkId::new("partitioned", k), &logs, |b, logs| {
            b.iter(|| black_box(merge_logs_partitioned(logs, rayon::current_num_threads())))
        });
    }
    group.finish();
}

/// Grouping a merged log: the old copy-everything hashmap vs the sorted
/// zero-copy index, on a CitySee-day log.
fn bench_grouping(c: &mut Criterion) {
    let campaign = run_scenario(&citysee_day());
    let events = campaign.merged.len() as u64;
    let mut group = c.benchmark_group("grouping");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(events));
    group.bench_function("by_packet_hashmap", |b| {
        b.iter(|| black_box(campaign.merged.by_packet()))
    });
    group.bench_function("packet_index", |b| {
        b.iter(|| black_box(campaign.merged.packet_index()))
    });
    group.finish();
}

/// The per-packet hot path: reconstruct every packet from its borrowed
/// group slice, one at a time. This is the loop the shared-template and
/// allocation-free transition work targets.
fn bench_per_packet(c: &mut Criterion) {
    let campaign = run_scenario(&bench_scenario());
    let recon = Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink());
    let index = campaign.merged.packet_index();

    let mut group = c.benchmark_group("per_packet");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(index.len() as u64));
    group.sample_size(10);
    group.bench_function("reconstruct_packet", |b| {
        b.iter(|| {
            let mut inferred = 0usize;
            for (id, events) in index.iter() {
                inferred += recon.reconstruct_packet(id, events).flow.inferred_count();
            }
            black_box(inferred)
        })
    });
    group.finish();
}

fn bench_reconstruct_drivers(c: &mut Criterion) {
    let campaign = run_scenario(&bench_scenario());
    let recon = Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink());
    let packets = campaign.merged.packet_ids().len() as u64;

    let mut group = c.benchmark_group("reconstruct_drivers");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(packets));
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(recon.reconstruct_log(&campaign.merged)))
    });
    group.bench_function("rayon", |b| {
        b.iter(|| black_box(reconstruct_rayon(&recon, &campaign.merged)))
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("crossbeam", workers),
            &workers,
            |b, &w| {
                b.iter(|| black_box(reconstruct_crossbeam(&recon, &campaign.merged, w)))
            },
        );
    }
    group.finish();
}

/// Signature-memoized reconstruction vs the direct pipeline. CitySee-like
/// traffic is ≥90% duplicate flow shapes, so `warm` (cache pre-filled)
/// shows the steady-state speedup and `cold` the first-pass overhead of
/// canonicalization + template publication.
fn bench_cached(c: &mut Criterion) {
    let campaign = run_scenario(&bench_scenario());
    let recon = Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink());
    let packets = campaign.merged.packet_ids().len() as u64;

    let mut group = c.benchmark_group("cached");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(packets));
    group.sample_size(10);
    group.bench_function("sequential_direct", |b| {
        b.iter(|| black_box(recon.reconstruct_log(&campaign.merged)))
    });
    group.bench_function("sequential_cold", |b| {
        b.iter(|| {
            let cache = SigCache::default();
            black_box(recon.reconstruct_log_cached(&campaign.merged, &cache))
        })
    });
    let warm = SigCache::default();
    recon.reconstruct_log_cached(&campaign.merged, &warm);
    group.bench_function("sequential_warm", |b| {
        b.iter(|| black_box(recon.reconstruct_log_cached(&campaign.merged, &warm)))
    });
    group.bench_function("rayon_warm", |b| {
        b.iter(|| black_box(reconstruct_rayon_cached(&recon, &campaign.merged, &warm)))
    });
    group.finish();
}

/// Legacy vs fused columnar pipeline, sequential and parallel. The legacy
/// rows pay merge + group + reconstruct as separate passes over an
/// intermediate merged `Vec<Event>`; the fused rows run merge → packed
/// store → permutation index → reconstruction with no intermediate event
/// vector. `*_seq` isolates the data-layout effect; `*_par` adds the
/// scheduler comparison (rayon vs size-aware work stealing).
fn bench_columnar(c: &mut Criterion) {
    let campaign = run_scenario(&bench_scenario());
    let recon = Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink());
    let packets = campaign.merged.packet_ids().len() as u64;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut group = c.benchmark_group("columnar");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(packets));
    group.sample_size(10);
    group.bench_function("legacy_seq", |b| {
        b.iter(|| {
            let merged = merge_logs(&campaign.collected);
            black_box(recon.reconstruct_log(&merged))
        })
    });
    group.bench_function("fused_seq", |b| {
        b.iter(|| {
            let store = merge_logs_store(&campaign.collected);
            let index = ColumnarIndex::build(&store);
            black_box(recon.reconstruct_store(&store, &index))
        })
    });
    group.bench_function("legacy_par", |b| {
        b.iter(|| {
            let merged = merge_logs(&campaign.collected);
            black_box(reconstruct_rayon(&recon, &merged))
        })
    });
    group.bench_function("fused_par", |b| {
        b.iter(|| black_box(reconstruct_fused(&recon, &campaign.collected, workers)))
    });
    // The rayon arena driver on a prebuilt store, to separate scheduler
    // effects from merge/index cost.
    let store = merge_logs_store(&campaign.collected);
    let index = ColumnarIndex::build(&store);
    group.bench_function("columnar_rayon_prebuilt", |b| {
        b.iter(|| black_box(reconstruct_columnar(&recon, &store, &index)))
    });
    group.finish();
}

fn bench_diagnose(c: &mut Criterion) {
    let campaign = run_scenario(&bench_scenario());
    let recon = Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink());
    let reports = recon.reconstruct_log(&campaign.merged);
    let diagnoser = Diagnoser::new().with_sink(campaign.topology.sink());
    let mut group = c.benchmark_group("diagnose");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(reports.len() as u64));
    group.bench_function("classify_all", |b| {
        b.iter(|| {
            black_box(
                reports
                    .iter()
                    .filter(|r| diagnoser.diagnose(r, None).delivered)
                    .count(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_merge,
    bench_grouping,
    bench_per_packet,
    bench_reconstruct_drivers,
    bench_cached,
    bench_columnar,
    bench_diagnose
);
criterion_main!(benches);
