//! Provenance observability cost: ledger capture at the three sampling
//! tiers (off / 1-in-64 / full capture) against the warm cached pipeline,
//! and the per-flow explanation narrative.
//!
//! "Off" is a reconstructor *without* a sink — absence is the disabled
//! path, and the contract is that it costs one branch per report — so the
//! `capture/off` row is the baseline the other tiers are read against.

use citysee::{run_scenario, Scenario};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use refill::diagnose::Diagnoser;
use refill::provenance::{ProvenanceSink, TraceSampler};
use refill::sigcache::SigCache;
use refill::trace::{CtpVocabulary, Reconstructor};
use std::sync::Arc;

fn bench_scenario() -> Scenario {
    Scenario {
        days: 3,
        ..Scenario::small()
    }
}

/// Warm cached reconstruction with no sink, a 1-in-64 sampler, and a
/// full-capture sampler. Each tier gets its own warmed cache so a shared
/// cache's hit pattern can't bleed between rows.
fn bench_capture(c: &mut Criterion) {
    let campaign = run_scenario(&bench_scenario());
    let packets = campaign.merged.packet_ids().len() as u64;

    let mut group = c.benchmark_group("provenance_capture");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(packets));
    group.sample_size(10);

    let samplers: [(&str, Option<fn() -> TraceSampler>); 3] = [
        ("off", None),
        ("one_in_64", Some(|| TraceSampler::one_in(64))),
        ("always", Some(TraceSampler::always as fn() -> TraceSampler)),
    ];
    for (label, sampler) in samplers {
        let mut recon =
            Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink());
        let sink = sampler.map(|make| Arc::new(ProvenanceSink::new(make())));
        if let Some(s) = &sink {
            recon = recon.with_provenance(Arc::clone(s));
        }
        let warm = SigCache::default();
        recon.reconstruct_log_cached(&campaign.merged, &warm);
        group.bench_function(label, |b| {
            b.iter(|| {
                if let Some(s) = &sink {
                    s.ledger().clear();
                }
                black_box(recon.reconstruct_log_cached(&campaign.merged, &warm))
            })
        });
    }
    group.finish();
}

/// Building the explanation narrative for every reconstructed packet from
/// its finished report — the `refill explain` hot path, amortized.
fn bench_explain(c: &mut Criterion) {
    let campaign = run_scenario(&bench_scenario());
    let recon = Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink());
    let reports = recon.reconstruct_log(&campaign.merged);
    let diagnoser = Diagnoser::new().with_sink(campaign.topology.sink());

    let mut group = c.benchmark_group("provenance_explain");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(reports.len() as u64));
    group.bench_function("explain_all", |b| {
        b.iter(|| {
            black_box(
                reports
                    .iter()
                    .map(|r| refill::explain::explain(r, &diagnoser, None).confidence)
                    .sum::<f64>(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_capture, bench_explain);
criterion_main!(benches);
