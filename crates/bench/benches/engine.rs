//! Microbenchmarks of the inference-engine core: template augmentation,
//! per-event transition processing, and deep cascaded inference.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eventlog::{Event, EventKind, PacketId};
use netsim::NodeId;
use refill::ctp_model::{CtpModel, CtpVocabulary};
use refill::fsm::{FsmBuilder, FsmTemplate};
use refill::net::{ConnectedNet, InterRule};
use refill::trace::Reconstructor;

/// Build-and-augment cost for FSMs of growing size (a chain of n states
/// with distinct labels).
fn bench_augmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fsm_augment");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [4usize, 16, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut builder = FsmBuilder::new("chain");
                let states: Vec<_> = (0..n).map(|i| builder.state(format!("s{i}"))).collect();
                for i in 0..n - 1 {
                    builder.t(states[i], i as u32, states[i + 1]);
                }
                black_box(builder.build().unwrap())
            });
        });
    }
    group.finish();
}

fn bench_ctp_model_build(c: &mut Criterion) {
    c.bench_function("ctp_model_build", |b| {
        b.iter(|| black_box(CtpModel::new(CtpVocabulary::citysee())))
    });
}

/// Per-packet reconstruction cost as the path length grows (complete logs).
fn bench_chain_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruct_chain");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let recon = Reconstructor::new(CtpVocabulary::table2());
    for hops in [2usize, 4, 8, 16, 32] {
        let p = PacketId::new(NodeId(0), 0);
        let mut events = Vec::new();
        for h in 0..hops {
            let (u, v) = (NodeId(h as u16), NodeId(h as u16 + 1));
            events.push(Event::new(u, EventKind::Trans { to: v }, p));
            events.push(Event::new(v, EventKind::Recv { from: u }, p));
            events.push(Event::new(u, EventKind::AckRecvd { to: v }, p));
        }
        group.bench_with_input(BenchmarkId::from_parameter(hops), &events, |b, events| {
            b.iter(|| black_box(recon.reconstruct_packet(p, events)));
        });
    }
    group.finish();
}

/// Deep cascaded forcing (the Figure 3a shape at depth n): engine 0's final
/// event requires engine 1's End, which requires engine 2's End, … with
/// every intermediate log empty, so the whole cascade is inferred.
fn bench_cascaded_inference(c: &mut Criterion) {
    fn chain_template(i: usize) -> FsmTemplate<(usize, u8)> {
        let mut b = FsmBuilder::new(format!("n{i}"));
        let init = b.state("Init");
        let mid = b.state("Mid");
        let end = b.state("End");
        b.t(init, (i, 0), mid).t(mid, (i, 1), end);
        b.build().unwrap()
    }
    let mut group = c.benchmark_group("cascaded_inference");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for depth in [2usize, 8, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut net: ConnectedNet<(usize, u8), (usize, u8)> = ConnectedNet::new();
                let mut engines = Vec::new();
                for i in 0..depth {
                    let t = net.add_template(chain_template(i));
                    engines.push(net.add_engine(t, format!("n{i}")));
                }
                for i in 0..depth - 1 {
                    let end = refill::fsm::StateId(2);
                    net.add_rule(
                        engines[i],
                        (i, 1),
                        InterRule {
                            peer: engines[i + 1],
                            satisfying: vec![end],
                            canonical: end,
                        },
                    );
                }
                // Only engine 0's two events are observed; everything else
                // is forced.
                net.push_event(engines[0], (0usize, 0u8));
                net.push_event(engines[0], (0usize, 1u8));
                let out = net.run(|e| *e, |_, t| t.label);
                black_box(out.flow.len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_augmentation,
    bench_ctp_model_build,
    bench_chain_reconstruction,
    bench_cascaded_inference
);
criterion_main!(benches);
