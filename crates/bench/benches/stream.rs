//! Streaming-path benchmarks: frame decode throughput and a cold replay of
//! one CitySee day through the online reconstruction pipeline, against the
//! batch pipeline over the same logs as the reference cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use citysee::{run_scenario, Scenario};
use eventlog::frame::decode_all;
use eventlog::merge_logs;
use eventlog::watermark::Lateness;
use refill::trace::{CtpVocabulary, Reconstructor};
use refill_stream::{run_stream, DriverConfig, Replay, StreamConfig, StreamReconstructor};
use std::io::Cursor;

/// One CitySee-like day at the small evaluation scale.
fn day() -> Scenario {
    Scenario {
        name: "citysee-day-small".into(),
        days: 1,
        ..Scenario::small()
    }
}

fn recon_for(campaign: &citysee::Campaign) -> Reconstructor {
    Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink())
}

fn bench_stream_replay(c: &mut Criterion) {
    let campaign = run_scenario(&day());
    let replay = Replay::from_campaign(&campaign, f64::INFINITY);
    let bytes = replay.encode();
    let records = replay.records().len() as u64;

    let mut group = c.benchmark_group("stream_replay");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(records));
    group.sample_size(10);

    // The codec alone: how fast framed bytes turn back into records.
    group.bench_function("decode_day", |b| {
        b.iter(|| black_box(decode_all(&bytes)))
    });

    // Cold end-to-end: ingest worker + windowed reconstruction from a
    // fresh state, the way a restarted collection service replays a day.
    group.bench_function("cold_replay_day", |b| {
        b.iter(|| {
            let mut stream = StreamReconstructor::with_config(
                recon_for(&campaign),
                StreamConfig {
                    lane_capacity: 256,
                    lateness: Lateness::default(),
                },
            );
            let summary = run_stream(
                Cursor::new(&bytes),
                &mut stream,
                DriverConfig::default(),
                |_| {},
            )
            .expect("in-memory replay does not fail");
            black_box(summary.reports.len())
        })
    });

    // The batch reference over the same logs: what the streaming overhead
    // is measured against.
    group.bench_function("batch_reference_day", |b| {
        b.iter(|| {
            let recon = recon_for(&campaign);
            black_box(recon.reconstruct_log(&merge_logs(&campaign.collected)).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stream_replay);
criterion_main!(benches);
