//! Coarse guard against telemetry regressions on the cached hot path.
//!
//! Ignored by default because it measures wall-clock time; the CI telemetry
//! job runs it explicitly in release mode where the timing is stable enough
//! for the deliberately loose 10% bound.

use citysee::{run_scenario, Scenario};
use eventlog::MergedLog;
use refill::sigcache::SigCache;
use refill::telemetry::{AtomicRecorder, Recorder};
use refill::trace::{CtpVocabulary, Reconstructor};
use std::sync::Arc;
use std::time::Instant;

/// Mean seconds per warm cached run (one cache-filling warm-up, then
/// `reps` measured runs against the now-warm cache).
fn secs_per_run(recon: &Reconstructor, cache: &SigCache, merged: &MergedLog, reps: u32) -> f64 {
    std::hint::black_box(recon.reconstruct_log_cached(merged, cache));
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(recon.reconstruct_log_cached(merged, cache));
    }
    t0.elapsed().as_secs_f64() / f64::from(reps)
}

#[test]
#[ignore = "timing-sensitive; run in release mode via the CI telemetry job"]
fn instrumented_throughput_within_10_percent_of_noop() {
    let scenario = Scenario {
        days: 1,
        ..Scenario::small()
    };
    let campaign = run_scenario(&scenario);
    let merged = &campaign.merged;
    let sink = campaign.topology.sink();
    let reps = 5;

    let plain = Reconstructor::new(CtpVocabulary::citysee()).with_sink(sink);
    let plain_cache = SigCache::default();
    let noop_secs = secs_per_run(&plain, &plain_cache, merged, reps);

    let recorder = Arc::new(AtomicRecorder::new());
    let for_recon: Arc<dyn Recorder> = Arc::clone(&recorder);
    let for_cache: Arc<dyn Recorder> = Arc::clone(&recorder);
    let instrumented = Reconstructor::new(CtpVocabulary::citysee())
        .with_sink(sink)
        .with_recorder(for_recon);
    let instrumented_cache = SigCache::default().with_recorder(for_cache);
    let instrumented_secs = secs_per_run(&instrumented, &instrumented_cache, merged, reps);

    // Sanity: the instrumented pass really recorded something.
    let snap = recorder.snapshot();
    assert!(snap.counter("packets_reconstructed") > 0);
    assert!(snap.stage("signature").is_some());

    let throughput_ratio = noop_secs / instrumented_secs;
    assert!(
        throughput_ratio >= 0.9,
        "instrumented cached reconstruction fell below 90% of plain throughput: \
         {:.1}% (plain {noop_secs:.4}s/run, instrumented {instrumented_secs:.4}s/run)",
        throughput_ratio * 100.0
    );
}
