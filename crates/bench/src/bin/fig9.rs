//! Regenerates **Figure 9 / Section V-C**: the overall breakdown of loss
//! causes, with the sink/off-sink splits the paper reports:
//!
//! > server outage 22.6 %; received 32.2 % (20.0 % sink + 12.2 % other);
//! > acked 38.6 % (38.0 % sink + 0.6 % other); duplicated 0.3 %;
//! > timeout 0.8 %; overflow 1.1 %.

use citysee::figures::{fig9_breakdown, render_fig9_ascii, CAUSE_ORDER};
use eventlog::LossCause;
use refill::DiagnosedCause;

const PAPER: &[(&str, f64)] = &[
    ("acked", 38.6),
    ("received", 32.2),
    ("server outage", 22.6),
    ("overflow", 1.1),
    ("timeout", 0.8),
    ("duplicated", 0.3),
];

fn main() {
    let (campaign, analysis) = bench::run_and_analyze();
    let b = fig9_breakdown(&campaign, &analysis);
    println!("Figure 9 — REFILL loss-cause breakdown (this run):");
    print!("{}", render_fig9_ascii(&b));

    println!("\npaper-vs-measured (percent of losses):");
    println!("{:>14} {:>8} {:>9}", "cause", "paper", "measured");
    for (label, paper_pct) in PAPER {
        let idx = CAUSE_ORDER
            .iter()
            .position(|c| c.label() == *label)
            .expect("known cause");
        println!("{:>14} {:>7.1}% {:>8.1}%", label, paper_pct, b.percent[idx]);
    }
    println!(
        "{:>14} {:>7.1}% {:>8.1}%",
        "received@sink", 20.0, b.received_sink_pct
    );
    println!(
        "{:>14} {:>7.1}% {:>8.1}%",
        "received@other", 12.2, b.received_other_pct
    );
    println!(
        "{:>14} {:>7.1}% {:>8.1}%",
        "acked@sink", 38.0, b.acked_sink_pct
    );
    println!(
        "{:>14} {:>7.1}% {:>8.1}%",
        "acked@other", 0.6, b.acked_other_pct
    );

    // Also report the breakdown against *truth* for calibration visibility.
    let truth = analysis.truth_cause_counts();
    let total: usize = truth.values().sum();
    println!("\nground-truth composition (calibration reference):");
    for cause in LossCause::ALL {
        let c = truth.get(&cause).copied().unwrap_or(0);
        println!(
            "{:>14} {:>8.1}%",
            cause.label(),
            100.0 * c as f64 / total.max(1) as f64
        );
    }
    let unknown = analysis
        .diagnosed_cause_counts()
        .get(&DiagnosedCause::Unknown)
        .copied()
        .unwrap_or(0);
    println!(
        "\nREFILL found causes for {:.1}% of losses ({unknown} unknown) — \
         \"REFILL finds the causes for most lost packets\"",
        100.0 * (b.lost_total.saturating_sub(unknown)) as f64 / b.lost_total.max(1) as f64
    );

    let json = serde_json::to_string_pretty(&b).expect("serialize");
    bench::write_artifact("fig9_breakdown.json", &json);
}
