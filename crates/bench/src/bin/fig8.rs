//! Regenerates **Figure 8**: the spatial distribution of *received* losses
//! (bubble size = loss count, triangle = sink). The paper's point: the sink
//! has by far the largest bubble — packets died *after* reaching it.

use citysee::figures::{fig8_spatial_received, render_fig8_csv};

fn main() {
    let (campaign, analysis) = bench::run_and_analyze();
    let points = fig8_spatial_received(&campaign, &analysis);
    bench::write_artifact("fig8_spatial_received.csv", &render_fig8_csv(&points));

    let mut ranked: Vec<&citysee::figures::SpatialPoint> =
        points.iter().filter(|p| p.received_losses > 0).collect();
    ranked.sort_by_key(|p| std::cmp::Reverse(p.received_losses));
    let total: usize = ranked.iter().map(|p| p.received_losses).sum();
    println!("Figure 8 — received losses by position (top 10 of {} affected nodes):", ranked.len());
    for p in ranked.iter().take(10) {
        println!(
            "  node {:>4} at ({:>6.0},{:>6.0}): {:>5} ({:4.1}%){}",
            p.node.0,
            p.x,
            p.y,
            p.received_losses,
            100.0 * p.received_losses as f64 / total.max(1) as f64,
            if p.is_sink { "  <- sink (triangle)" } else { "" }
        );
    }

    // Coarse ASCII map: 12×12 grid of loss densities, sink marked.
    let side = campaign.topology.side_m();
    const G: usize = 12;
    let mut grid = [[0usize; G]; G];
    let mut sink_cell = (0usize, 0usize);
    for p in &points {
        let gx = ((p.x / side) * G as f64).clamp(0.0, (G - 1) as f64) as usize;
        let gy = ((p.y / side) * G as f64).clamp(0.0, (G - 1) as f64) as usize;
        grid[gy][gx] += p.received_losses;
        if p.is_sink {
            sink_cell = (gy, gx);
        }
    }
    let max = grid.iter().flatten().max().copied().unwrap_or(1).max(1);
    println!("\nspatial density map (darker = more received losses, ▲ = sink):");
    for (y, row) in grid.iter().enumerate() {
        let line: String = row
            .iter()
            .enumerate()
            .map(|(x, &c)| {
                if (y, x) == sink_cell {
                    '▲'
                } else {
                    match c * 8 / max {
                        0 if c == 0 => '·',
                        0 => '░',
                        1..=2 => '▒',
                        3..=5 => '▓',
                        _ => '█',
                    }
                }
            })
            .collect();
        println!("  {line}");
    }
}
