//! Regenerates **Figure 5**: loss causes by *loss position* (REFILL's
//! view). The paper's observations this reproduces: loss positions
//! concentrate on a small set of nodes (the sink band dominating), and
//! timeout/duplicate losses arrive in localized bursts.

use citysee::figures::{fig4_source_view, fig5_loss_positions, render_loss_points_csv};
use eventlog::LossCause;
use refill::DiagnosedCause;

fn main() {
    let (campaign, analysis) = bench::run_and_analyze();
    let points = fig5_loss_positions(&analysis);
    bench::write_artifact("fig5_loss_positions.csv", &render_loss_points_csv(&points));

    // Concentration: top loss positions.
    let mut per_node: std::collections::HashMap<u16, usize> = std::collections::HashMap::new();
    for p in &points {
        *per_node.entry(p.node.0).or_insert(0) += 1;
    }
    let mut ranked: Vec<(u16, usize)> = per_node.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let total: usize = ranked.iter().map(|(_, c)| c).sum();
    println!("Figure 5 — top loss positions (REFILL view):");
    for (node, count) in ranked.iter().take(10) {
        let tag = if *node == campaign.topology.sink().0 {
            " <- sink"
        } else {
            ""
        };
        println!(
            "  node {:>4}: {:>5} ({:4.1}%){}",
            node,
            count,
            100.0 * *count as f64 / total.max(1) as f64,
            tag
        );
    }
    let top5: usize = ranked.iter().take(5).map(|(_, c)| c).sum();
    println!(
        "\ntop-5 positions hold {:.1}% of losses ({} positions total; {} origins in fig4) — \
         concentrated, unlike the even source view",
        100.0 * top5 as f64 / total.max(1) as f64,
        ranked.len(),
        {
            let f4 = fig4_source_view(&analysis);
            let mut o: Vec<u16> = f4.iter().map(|p| p.node.0).collect();
            o.sort_unstable();
            o.dedup();
            o.len()
        }
    );

    // Burstiness of timeout/dup losses: fraction inside their densest day.
    for cause in [LossCause::TimeoutLoss, LossCause::DuplicateLoss] {
        let times: Vec<f64> = points
            .iter()
            .filter(|p| p.cause == DiagnosedCause::Known(cause))
            .map(|p| p.time_s)
            .collect();
        if times.is_empty() {
            println!("{cause}: none");
            continue;
        }
        let day = campaign.scenario.day_secs as f64;
        let mut per_day = std::collections::HashMap::new();
        for t in &times {
            *per_day.entry((t / day) as u32).or_insert(0usize) += 1;
        }
        let peak = per_day.values().max().copied().unwrap_or(0);
        println!(
            "{cause}: {} losses, densest day holds {:.0}% (bursty when >> uniform {:.0}%)",
            times.len(),
            100.0 * peak as f64 / times.len() as f64,
            100.0 / campaign.scenario.days as f64
        );
    }
}
