//! Regenerates **Figure 6**: the daily composition of loss causes over the
//! 30-day campaign — the snow spike on days 9–10 and the collapse of sink
//! losses after the day-23 wiring fix.

use citysee::figures::{fig6_daily_causes, render_fig6_ascii, render_fig6_csv};

fn main() {
    let (campaign, analysis) = bench::run_and_analyze();
    let days = fig6_daily_causes(&campaign, &analysis);
    bench::write_artifact("fig6_daily_causes.csv", &render_fig6_csv(&days));
    println!("Figure 6 — daily loss-cause composition:");
    print!("{}", render_fig6_ascii(&days, &campaign.scenario));

    if let Some(fix) = campaign.scenario.sink_fix_day {
        let rate = |range: &[citysee::figures::DailyCauses]| {
            let lost: usize = range.iter().map(|d| d.total).sum();
            let generated: usize = range.iter().map(|d| d.generated).sum();
            100.0 * lost as f64 / generated.max(1) as f64
        };
        let before = rate(&days[..fix as usize]);
        let after = rate(&days[fix as usize..]);
        println!(
            "\nloss rate before the sink fix: {before:.1}%, after: {after:.1}% — \
             the paper's day-23 drop"
        );
    }
}
