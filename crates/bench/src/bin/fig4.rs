//! Regenerates **Figure 4**: temporal distribution of lost packets in the
//! *source/sink view* — time on the x-axis, the *origin* node on the y-axis,
//! cause as the marker. The paper's observation: losses look evenly spread
//! over sources and temporally bursty. Compare with `fig5`.

use citysee::figures::{fig4_source_view, render_loss_points_csv};

fn main() {
    let (campaign, analysis) = bench::run_and_analyze();
    let points = fig4_source_view(&analysis);
    bench::write_artifact("fig4_source_view.csv", &render_loss_points_csv(&points));

    // ASCII summary: per-day loss counts + how evenly origins are hit.
    let scenario = &campaign.scenario;
    let day_secs = scenario.day_secs as f64;
    let mut per_day = vec![0usize; scenario.days as usize];
    for pt in &points {
        let d = ((pt.time_s / day_secs) as usize).min(per_day.len() - 1);
        per_day[d] += 1;
    }
    println!("Figure 4 — lost packets per day (source view):");
    for (d, c) in per_day.iter().enumerate() {
        println!("  day {:>2}: {:>5} {}", d + 1, c, "*".repeat((*c / 4).min(80)));
    }

    let mut origins: Vec<u16> = points.iter().map(|p| p.node.0).collect();
    origins.sort_unstable();
    origins.dedup();
    println!(
        "\ndistinct origins with losses: {} of {} nodes — losses are spread across sources",
        origins.len(),
        scenario.nodes
    );
}
