//! Logging-efficiency study (the paper's future work: "more efficient and
//! effective logging methods for REFILL").
//!
//! Which log statements actually buy diagnosis accuracy? We filter the
//! collected logs down to different vocabularies *after* collection (as if
//! the deployment had compiled out those log statements), re-run REFILL on
//! each, and report accuracy against the log volume — the cost that
//! matters on flash-constrained motes.

use citysee::run_scenario;
use eventlog::logger::LocalLog;
use eventlog::merge::merge_logs;
use eventlog::{EventKind, PacketId, TruthEvent};
use baselines::source_view::SourceView;
use eventlog::event::BASE_STATION;
use rayon::prelude::*;
use refill::diagnose::Diagnoser;
use refill::score::{score_cause, score_flow, CauseScore, FlowScore};
use refill::trace::{CtpVocabulary, Reconstructor};
use rustc_hash::FxHashMap;

/// A vocabulary: which event kinds survive in the logs.
struct Vocab {
    name: &'static str,
    keep: fn(&EventKind) -> bool,
}

const VOCABS: &[Vocab] = &[
    Vocab {
        name: "full",
        keep: |_| true,
    },
    Vocab {
        name: "no acks",
        keep: |k| !matches!(k, EventKind::AckRecvd { .. }),
    },
    Vocab {
        name: "no trans",
        keep: |k| !matches!(k, EventKind::Trans { .. }),
    },
    Vocab {
        name: "no recv",
        keep: |k| !matches!(k, EventKind::Recv { .. }),
    },
    Vocab {
        name: "recv+trans only",
        keep: |k| {
            matches!(
                k,
                EventKind::Recv { .. }
                    | EventKind::Trans { .. }
                    | EventKind::BsRecv
                    | EventKind::SerialTrans
            )
        },
    },
    Vocab {
        name: "errors only",
        keep: |k| {
            matches!(
                k,
                EventKind::Overflow { .. }
                    | EventKind::Dup { .. }
                    | EventKind::Timeout { .. }
                    | EventKind::BsRecv
            )
        },
    },
];

fn filter_logs(logs: &[LocalLog], keep: fn(&EventKind) -> bool) -> Vec<LocalLog> {
    logs.iter()
        .map(|l| LocalLog {
            node: l.node,
            entries: l
                .entries
                .iter()
                .filter(|e| keep(&e.event.kind))
                .copied()
                .collect(),
        })
        .collect()
}

fn main() {
    let mut scenario = bench::scenario_from_env();
    if std::env::var("REFILL_DAYS").is_err() {
        scenario.days = scenario.days.min(8);
    }
    let campaign = run_scenario(&scenario);
    let sink = campaign.topology.sink();
    let faults = scenario.faults();
    let full_entries: usize = campaign.collected.iter().map(|l| l.len()).sum();

    // The base-station log survives every vocabulary, so the source-view
    // time estimates (needed to attribute outage losses) are shared.
    let bs_log = campaign
        .collected
        .iter()
        .find(|l| l.node == BASE_STATION)
        .cloned()
        .unwrap_or_else(|| LocalLog::new(BASE_STATION));
    let source_view = SourceView::from_bs_log(&bs_log, scenario.packet_interval());

    let mut truth_by_packet: FxHashMap<PacketId, Vec<TruthEvent>> = FxHashMap::default();
    for te in &campaign.sim.truth.events {
        truth_by_packet.entry(te.event.packet).or_default().push(*te);
    }

    println!(
        "logging-efficiency study ({} packets, {} collected entries at full vocabulary):\n",
        campaign.sim.truth.packet_count(),
        full_entries
    );
    println!(
        "{:<18} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "vocabulary", "entries", "volume", "recall", "cause", "position", "delivery"
    );
    let mut csv =
        String::from("vocabulary,entries,volume_frac,recall,cause_acc,position_acc,delivery_acc\n");
    for v in VOCABS {
        let filtered = filter_logs(&campaign.collected, v.keep);
        let entries: usize = filtered.iter().map(|l| l.len()).sum();
        let merged = merge_logs(&filtered);
        let index = merged.packet_index();
        let mut ids: Vec<PacketId> = campaign.sim.truth.fates.keys().copied().collect();
        ids.sort_unstable();
        let recon = Reconstructor::new(CtpVocabulary::citysee()).with_sink(sink);
        let diagnoser = Diagnoser::new()
            .with_outages(faults.outages.clone())
            .with_sink(sink);
        let (fs, cs) = ids
            .par_iter()
            .map(|id| {
                let events = index.get(*id).unwrap_or(&[]);
                let report = recon.reconstruct_packet(*id, events);
                let d = diagnoser.diagnose(&report, source_view.estimate_time(*id));
                let fs = score_flow(
                    &report,
                    truth_by_packet.get(id).map(|v| v.as_slice()).unwrap_or(&[]),
                );
                let cs = campaign
                    .sim
                    .truth
                    .fates
                    .get(id)
                    .map(|f| score_cause(&d, f))
                    .unwrap_or_default();
                (fs, cs)
            })
            .reduce(
                || (FlowScore::default(), CauseScore::default()),
                |mut a, b| {
                    a.0.merge(&b.0);
                    a.1.merge(&b.1);
                    a
                },
            );
        let volume = entries as f64 / full_entries.max(1) as f64;
        println!(
            "{:<18} {:>9} {:>7.0}% {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            v.name,
            entries,
            100.0 * volume,
            fs.recall(),
            cs.cause_accuracy(),
            cs.position_accuracy(),
            cs.delivery_accuracy()
        );
        csv.push_str(&format!(
            "{},{entries},{volume:.4},{:.4},{:.4},{:.4},{:.4}\n",
            v.name,
            fs.recall(),
            cs.cause_accuracy(),
            cs.position_accuracy(),
            cs.delivery_accuracy()
        ));
    }
    bench::write_artifact("logging_efficiency.csv", &csv);
    println!(
        "\nfinding: trans records are largely redundant — a recv implies the trans, an ack\n\
         implies the whole hop — so dropping them saves ~40% volume at no accuracy cost,\n\
         while ack records are irreplaceable (they carry the acked-vs-received\n\
         distinction). Exactly the kind of logging guidance the paper's future work asks\n\
         for, derived from REFILL's own correlation structure."
    );
}
