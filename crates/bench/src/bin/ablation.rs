//! Ablation study: what each piece of REFILL contributes.
//!
//! DESIGN.md calls out the two derived mechanisms — *intra-node jump
//! transitions* and *inter-node prerequisite rules* — as the paper's core
//! contributions over a plain per-node FSM replay. This binary re-analyzes
//! one campaign with each mechanism disabled and reports the damage, plus
//! the Wit merge outcome (Section VI's motivating comparison).

use baselines::source_view::SourceView;
use baselines::wit::wit_merge;
use citysee::run_scenario;
use eventlog::{PacketId, TruthEvent};
use netsim::SimTime;
use rayon::prelude::*;
use refill::diagnose::Diagnoser;
use refill::score::{score_cause, score_flow, CauseScore, FlowScore};
use refill::trace::{CtpVocabulary, ReconOptions, Reconstructor};
use rustc_hash::FxHashMap;

fn main() {
    let mut scenario = bench::scenario_from_env();
    if std::env::var("REFILL_DAYS").is_err() {
        scenario.days = scenario.days.min(10);
    }
    let campaign = run_scenario(&scenario);
    let sink = campaign.topology.sink();
    let faults = scenario.faults();
    let bs_log = campaign
        .collected
        .iter()
        .find(|l| l.node == eventlog::event::BASE_STATION)
        .cloned()
        .unwrap_or_else(|| eventlog::logger::LocalLog::new(eventlog::event::BASE_STATION));
    let source_view = SourceView::from_bs_log(&bs_log, scenario.packet_interval());

    let variants = [
        ("full REFILL", ReconOptions { intra_jumps: true, inter_rules: true }),
        ("no inter-node rules", ReconOptions { intra_jumps: true, inter_rules: false }),
        ("no intra-node jumps", ReconOptions { intra_jumps: false, inter_rules: true }),
        ("plain FSM replay", ReconOptions { intra_jumps: false, inter_rules: false }),
    ];

    // Shared inputs.
    let mut truth_by_packet: FxHashMap<PacketId, Vec<TruthEvent>> = FxHashMap::default();
    for te in &campaign.sim.truth.events {
        truth_by_packet.entry(te.event.packet).or_default().push(*te);
    }
    let index = campaign.merged.packet_index();

    let mut csv = String::from(
        "variant,inferred,recall,precision,cause_acc,position_acc,omitted\n",
    );
    println!(
        "{:<22} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "variant", "inferred", "recall", "precision", "cause", "position", "omitted"
    );
    for (name, options) in variants {
        let recon = Reconstructor::new(CtpVocabulary::citysee())
            .with_sink(sink)
            .with_options(options);
        let diagnoser = Diagnoser::new()
            .with_outages(faults.outages.clone())
            .with_sink(sink);
        let (flow, cause, omitted) = (0..index.len())
            .into_par_iter()
            .map(|i| {
                let (id, events) = index.group(i);
                let report = recon.reconstruct_packet(id, events);
                let fs = score_flow(
                    &report,
                    truth_by_packet.get(&id).map(|v| v.as_slice()).unwrap_or(&[]),
                );
                let est: Option<SimTime> = source_view.estimate_time(id);
                let d = diagnoser.diagnose(&report, est);
                let cs = campaign
                    .sim
                    .truth
                    .fates
                    .get(&id)
                    .map(|f| score_cause(&d, f))
                    .unwrap_or_default();
                (fs, cs, report.omitted.len())
            })
            .reduce(
                || (FlowScore::default(), CauseScore::default(), 0usize),
                |mut a, b| {
                    a.0.merge(&b.0);
                    a.1.merge(&b.1);
                    a.2 += b.2;
                    a
                },
            );
        println!(
            "{:<22} {:>9} {:>7.3} {:>9.3} {:>9.3} {:>9.3} {:>8}",
            name,
            flow.inferred,
            flow.recall(),
            flow.precision(),
            cause.cause_accuracy(),
            cause.position_accuracy(),
            omitted,
        );
        csv.push_str(&format!(
            "{name},{},{:.4},{:.4},{:.4},{:.4},{}\n",
            flow.inferred,
            flow.recall(),
            flow.precision(),
            cause.cause_accuracy(),
            cause.position_accuracy(),
            omitted,
        ));
    }
    bench::write_artifact("ablation.csv", &csv);

    // Wit comparison (Section VI): local logs share no common events.
    let wit = wit_merge(&campaign.collected);
    println!(
        "\nWit-style merge: {} logs → {} components ({} mergeable pairs) — \
         local logs cannot be combined by common events",
        wit.log_count,
        wit.components.len(),
        wit.merged_pair_fraction()
    );
}
