//! The §V-D implications, quantified.
//!
//! Two design questions the paper raises from REFILL's results, run as
//! controlled experiments on the substrate:
//!
//! 1. **Node loss vs link loss (§V-D.3)** — "with up to 30 retransmissions
//!    for each packet, packet losses due to low link quality become very
//!    low". Sweep the retry budget and watch timeout (link) losses vanish
//!    while node losses — and the energy bill — remain.
//! 2. **ACK mechanism (§V-D.5)** — hardware ACKs lose hardware-acked
//!    packets inside the receiver; software ACKs retry them instead, at
//!    the cost of extra transmissions ("this will introduce delay for the
//!    ACK, which decreases the transmission efficiency").

use citysee::Scenario;
use eventlog::LossCause;
use netsim::link::LinkModel;
use protocols::sim::Simulator;

fn run_with(
    scenario: &Scenario,
    tweak: impl FnOnce(&mut protocols::SimConfig),
) -> protocols::sim::SimOutput {
    let (topology, table, faults, mut config) = scenario.build();
    tweak(&mut config);
    let _ = LinkModel::build_table; // (table built by scenario)
    Simulator::new(topology, table, faults, config).run()
}

fn main() {
    let mut scenario = bench::scenario_from_env();
    if std::env::var("REFILL_DAYS").is_err() {
        scenario.days = scenario.days.min(6);
    }

    // --- 1. Retry-budget sweep -------------------------------------------
    println!("§V-D.3 — node loss vs link loss (retry budget sweep):");
    println!(
        "{:>8} {:>10} {:>13} {:>12} {:>10} {:>14}",
        "retries", "delivery", "timeout-loss", "node-loss", "mean-retx", "energy (J)"
    );
    let mut csv = String::from("max_retries,delivery,timeout_share,node_share,retx,energy_j\n");
    for retries in [1u32, 3, 10, 30] {
        let out = run_with(&scenario, |c| c.max_retries = retries);
        let by_cause = out.truth.losses_by_cause();
        let lost: usize = by_cause.values().sum();
        let share = |c: LossCause| {
            100.0 * by_cause.get(&c).copied().unwrap_or(0) as f64 / lost.max(1) as f64
        };
        let timeout_share = share(LossCause::TimeoutLoss);
        let node_share = share(LossCause::ReceivedLoss) + share(LossCause::AckedLoss);
        let retx = out.counters.get("retransmissions") as f64
            / out.counters.get("generated").max(1) as f64;
        let energy_j = out.energy.network_total_mj() / 1e3;
        println!(
            "{:>8} {:>9.1}% {:>12.1}% {:>11.1}% {:>10.2} {:>14.1}",
            retries,
            100.0 * out.truth.delivery_ratio(),
            timeout_share,
            node_share,
            retx,
            energy_j
        );
        csv.push_str(&format!(
            "{retries},{:.4},{:.4},{:.4},{:.4},{:.1}\n",
            out.truth.delivery_ratio(),
            timeout_share / 100.0,
            node_share / 100.0,
            retx,
            energy_j
        ));
    }
    bench::write_artifact("implications_retries.csv", &csv);

    // --- 2. Hardware vs software ACK -------------------------------------
    println!("\n§V-D.5 — ACK mechanism:");
    println!(
        "{:>10} {:>10} {:>12} {:>14} {:>14}",
        "ack", "delivery", "acked-losses", "transmissions", "energy (J)"
    );
    let mut csv = String::from("ack,delivery,acked_losses,transmissions,energy_j\n");
    for (name, software) in [("hardware", false), ("software", true)] {
        let out = run_with(&scenario, |c| c.software_ack = software);
        let acked = out
            .truth
            .losses_by_cause()
            .get(&LossCause::AckedLoss)
            .copied()
            .unwrap_or(0);
        println!(
            "{:>10} {:>9.1}% {:>12} {:>14} {:>14.1}",
            name,
            100.0 * out.truth.delivery_ratio(),
            acked,
            out.counters.get("transmissions"),
            out.energy.network_total_mj() / 1e3
        );
        csv.push_str(&format!(
            "{name},{:.4},{acked},{},{:.1}\n",
            out.truth.delivery_ratio(),
            out.counters.get("transmissions"),
            out.energy.network_total_mj() / 1e3
        ));
    }
    bench::write_artifact("implications_ack.csv", &csv);
    println!(
        "\nsoftware ACKs convert acked losses into retransmissions — better delivery,\n\
         more channel use; the paper's predicted trade-off."
    );
}
