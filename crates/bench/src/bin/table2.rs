//! Regenerates **Table II** of the paper: the four lossy-log cases on a
//! three-node chain and the event flows REFILL reconstructs from them,
//! printed next to the paper's expected output.

use eventlog::{merge_logs, Event, EventKind, LocalLog, PacketId};
use netsim::NodeId;
use refill::trace::{CtpVocabulary, Reconstructor};

fn n(i: u16) -> NodeId {
    NodeId(i)
}

fn p() -> PacketId {
    PacketId::new(n(1), 0)
}

fn ev(node: u16, kind: EventKind) -> Event {
    Event::new(n(node), kind, p())
}

struct Case {
    name: &'static str,
    logs: Vec<LocalLog>,
    expected: &'static str,
    note: &'static str,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "complete log",
            logs: vec![
                LocalLog::from_events(
                    n(1),
                    vec![
                        ev(1, EventKind::Trans { to: n(2) }),
                        ev(1, EventKind::AckRecvd { to: n(2) }),
                    ],
                ),
                LocalLog::from_events(
                    n(2),
                    vec![
                        ev(2, EventKind::Recv { from: n(1) }),
                        ev(2, EventKind::Trans { to: n(3) }),
                        ev(2, EventKind::AckRecvd { to: n(3) }),
                    ],
                ),
                LocalLog::from_events(n(3), vec![ev(3, EventKind::Recv { from: n(2) })]),
            ],
            expected:
                "1-2 trans, 1-2 recv, 1-2 ack recvd, 2-3 trans, 2-3 recv, 2-3 ack recvd",
            note: "nothing lost, nothing inferred",
        },
        Case {
            name: "Case 1",
            logs: vec![
                LocalLog::from_events(n(1), vec![ev(1, EventKind::Trans { to: n(2) })]),
                LocalLog::from_events(n(3), vec![ev(3, EventKind::Recv { from: n(2) })]),
            ],
            expected: "1-2 trans, [1-2 recv], [2-3 trans], 2-3 recv",
            note: "node 2's whole log lost; its hop is inferred",
        },
        Case {
            name: "Case 2",
            logs: vec![LocalLog::from_events(
                n(1),
                vec![
                    ev(1, EventKind::Trans { to: n(2) }),
                    ev(1, EventKind::AckRecvd { to: n(2) }),
                ],
            )],
            expected: "1-2 trans, [1-2 recv], 1-2 ack recvd",
            note: "acked but receiver logged nothing: acked loss at node 2",
        },
        Case {
            name: "Case 3",
            logs: vec![LocalLog::from_events(
                n(1),
                vec![
                    ev(1, EventKind::AckRecvd { to: n(2) }),
                    ev(1, EventKind::Trans { to: n(2) }),
                ],
            )],
            expected: "[1-2 trans], [1-2 recv], 1-2 ack recvd, 1-2 trans",
            note: "ack before trans: a retransmission whose first attempt was lost",
        },
        Case {
            name: "Case 4",
            logs: vec![
                LocalLog::from_events(
                    n(1),
                    vec![
                        ev(1, EventKind::Trans { to: n(2) }),
                        ev(1, EventKind::AckRecvd { to: n(2) }),
                        ev(1, EventKind::Recv { from: n(3) }),
                        ev(1, EventKind::Trans { to: n(2) }),
                        ev(1, EventKind::AckRecvd { to: n(2) }),
                    ],
                ),
                LocalLog::from_events(
                    n(2),
                    vec![
                        ev(2, EventKind::Recv { from: n(1) }),
                        ev(2, EventKind::Trans { to: n(3) }),
                        ev(2, EventKind::AckRecvd { to: n(3) }),
                        ev(2, EventKind::Trans { to: n(3) }),
                    ],
                ),
                LocalLog::from_events(
                    n(3),
                    vec![
                        ev(3, EventKind::Recv { from: n(2) }),
                        ev(3, EventKind::Trans { to: n(1) }),
                        ev(3, EventKind::AckRecvd { to: n(1) }),
                    ],
                ),
            ],
            expected: "1-2 trans, 1-2 recv, 1-2 ack recvd, 2-3 trans, 2-3 recv, \
                       2-3 ack recvd, 3-1 trans, 3-1 recv, 3-1 ack recvd, 1-2 trans, \
                       [1-2 recv], 1-2 ack recvd, 2-3 trans",
            note: "routing loop 1→2→3→1→2; lost on node 2's second transmission",
        },
    ]
}

fn main() {
    let recon = Reconstructor::new(CtpVocabulary::table2());
    let mut all_match = true;
    let mut report = String::new();
    for case in cases() {
        let merged = merge_logs(&case.logs);
        let out = recon.reconstruct_packet(p(), &merged.by_packet()[&p()]);
        let got = out.flow.to_string();
        let expected_norm = case.expected.split_whitespace().collect::<Vec<_>>().join(" ");
        let ok = got == expected_norm;
        all_match &= ok;
        println!("== Table II, {} — {}", case.name, case.note);
        println!("   paper : {expected_norm}");
        println!("   refill: {got}   {}", if ok { "[match]" } else { "[MISMATCH]" });
        println!();
        report.push_str(&format!("{}\t{}\t{}\n", case.name, ok, got));
    }
    bench::write_artifact("table2.tsv", &report);
    if all_match {
        println!("all Table II cases reproduce the paper's flows exactly");
    } else {
        println!("MISMATCH against the paper's flows");
        std::process::exit(1);
    }
}
