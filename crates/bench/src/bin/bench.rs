//! Perf snapshot: measures reconstruction throughput on a fixed scenario
//! and writes `BENCH_reconstruction.json` at the repo root, so successive
//! changes to the hot path leave a comparable trajectory.
//!
//! Run with: `cargo run --release -p bench --bin bench`
//!
//! * `REFILL_BENCH_OUT` — override the output path
//! * `REFILL_BENCH_REPS` — measured repetitions per driver (default 3)

use bench::synth_merge_logs;
use citysee::{run_scenario, Scenario};
use eventlog::{merge_logs_kway, merge_logs_partitioned, merge_logs_recorded};
use refill::parallel::{reconstruct_crossbeam, reconstruct_rayon, reconstruct_rayon_cached};
use refill::sigcache::SigCache;
use refill::telemetry::{AtomicRecorder, Recorder, TelemetrySnapshot};
use refill::trace::{CtpVocabulary, Reconstructor};
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

/// Peak resident set size in kiB from `/proc/self/status` (Linux-only; the
/// snapshot records `null` elsewhere — RSS is a nice-to-have, not a gate).
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Mean seconds per call over `reps` measured calls (after one warm-up).
fn time_call<T>(mut f: impl FnMut() -> T, reps: u32) -> f64 {
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / f64::from(reps)
}

fn main() {
    let reps: u32 = std::env::var("REFILL_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let scenario = Scenario {
        days: 3,
        ..Scenario::small()
    };
    eprintln!(
        "[bench] perf snapshot on '{}': {} nodes, {} days, {} reps",
        scenario.name, scenario.nodes, scenario.days, reps
    );
    let campaign = run_scenario(&scenario);
    let recon = Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink());
    let index = campaign.merged.packet_index();
    let packets = index.len();
    let events = campaign.merged.len();
    eprintln!("[bench] {packets} packets, {events} merged events");

    let group_hashmap_s = time_call(|| campaign.merged.by_packet(), reps);
    let group_index_s = time_call(|| campaign.merged.packet_index(), reps);
    let sequential_s = time_call(|| recon.reconstruct_log(&campaign.merged), reps);
    let rayon_s = time_call(|| reconstruct_rayon(&recon, &campaign.merged), reps);
    let crossbeam4_s = time_call(|| reconstruct_crossbeam(&recon, &campaign.merged, 4), reps);

    // Cached variants. Cold builds (and fills) a fresh cache every call —
    // the first-sight cost including canonicalization and template
    // publication; warm shares one cache across calls — the steady-state
    // cost, which is what a long-running collection service sees.
    let cached_cold_s = time_call(
        || {
            let cache = SigCache::default();
            recon.reconstruct_log_cached(&campaign.merged, &cache)
        },
        reps,
    );
    let shared = SigCache::default();
    let cached_warm_s = time_call(|| recon.reconstruct_log_cached(&campaign.merged, &shared), reps);
    let cached_rayon_s = time_call(
        || reconstruct_rayon_cached(&recon, &campaign.merged, &shared),
        reps,
    );
    let cache_stats = shared.stats();

    // Instrumented pass: the same warm cached reconstruction with a live
    // recorder attached, so the snapshot gets a real stage breakdown and
    // the throughput delta vs `cached_warm` measures telemetry overhead.
    // An explicit recorded merge gives the merge stage a span too.
    let recorder = Arc::new(AtomicRecorder::new());
    let recorded_recon = Reconstructor::new(CtpVocabulary::citysee())
        .with_sink(campaign.topology.sink())
        .with_recorder({
            let shared: Arc<dyn Recorder> = Arc::clone(&recorder);
            shared
        });
    let recorded_cache = SigCache::default().with_recorder({
        let shared: Arc<dyn Recorder> = Arc::clone(&recorder);
        shared
    });
    let merge_recorded_s = time_call(|| merge_logs_recorded(&campaign.collected, &*recorder), reps);

    // Merge fan-in sweep on synthetic sorted logs: the sequential loser
    // tree vs the time-partitioned parallel front-end at the paper's
    // deployment scale (K = 1200 nodes) and two smaller fan-ins, fixed
    // total event count. The headline fields report K = 1200; the per-K
    // map keeps the whole sweep. The partition count the auto path
    // actually picks is read back from a recorded merge.
    let merge_sweep_total = 1_200_000usize;
    let mut merge_by_k = serde_json::Map::new();
    let mut merge_kway_eps = 0.0f64;
    let mut merge_parallel_eps = 0.0f64;
    for k in [60usize, 300, 1200] {
        let logs = synth_merge_logs(k, merge_sweep_total);
        let sweep_events: usize = logs.iter().map(|l| l.len()).sum();
        let kway_s = time_call(|| merge_logs_kway(&logs), reps);
        let parallel_s = time_call(
            || merge_logs_partitioned(&logs, rayon::current_num_threads()),
            reps,
        );
        if k == 1200 {
            merge_kway_eps = sweep_events as f64 / kway_s;
            merge_parallel_eps = sweep_events as f64 / parallel_s;
        }
        merge_by_k.insert(
            format!("k{k}"),
            json!({
                "events": sweep_events,
                "loser_tree_ms": kway_s * 1e3,
                "partitioned_ms": parallel_s * 1e3,
            }),
        );
    }
    let merge_partitions = {
        let rec = AtomicRecorder::new();
        let _ = merge_logs_recorded(&synth_merge_logs(1200, merge_sweep_total), &rec);
        rec.snapshot().counter("merge_partitions")
    };
    let telemetry_warm_s = time_call(
        || recorded_recon.reconstruct_log_cached(&campaign.merged, &recorded_cache),
        reps,
    );
    // Streaming path: the same campaign replayed cold through the framed
    // online pipeline (resynchronizing decode, watermark windowing,
    // incremental redo), the way a restarted collection service would.
    let replay = refill_stream::Replay::from_campaign(&campaign, f64::INFINITY);
    let stream_bytes = replay.encode();
    let stream_records = replay.records().len();
    let mut stream_packets = 0usize;
    let mut stream_frames = eventlog::frame::FrameStats::default();
    let stream_cold_s = time_call(
        || {
            let mut stream = refill_stream::StreamReconstructor::new(
                Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink()),
            );
            let summary = refill_stream::run_stream(
                std::io::Cursor::new(&stream_bytes),
                &mut stream,
                refill_stream::DriverConfig::default(),
                |_| {},
            )
            .expect("in-memory replay does not fail");
            stream_packets = summary.reports.len();
            stream_frames = summary.frames;
            summary.stats.records
        },
        reps,
    );

    let telemetry = recorder.snapshot();
    // Stage totals accumulate over every call, including the warm-up, so
    // the per-run figure divides by reps + 1.
    let passes = f64::from(reps + 1);
    let stage_ms = |snapshot: &TelemetrySnapshot, name: &str| {
        snapshot.stage(name).map(|s| s.total_ns as f64 / 1e6 / passes)
    };

    let pps = |secs: f64| packets as f64 / secs;
    let snapshot = json!({
        "bench": "reconstruction",
        "generated": true,
        "scenario": {
            "name": scenario.name,
            "nodes": scenario.nodes,
            "days": scenario.days,
            "seed": scenario.seed,
        },
        "packets": packets,
        "merged_events": events,
        "reps": reps,
        "sequential_packets_per_sec": pps(sequential_s),
        "rayon_packets_per_sec": pps(rayon_s),
        "crossbeam4_packets_per_sec": pps(crossbeam4_s),
        "cached_cold_packets_per_sec": pps(cached_cold_s),
        "cached_warm_packets_per_sec": pps(cached_warm_s),
        "cached_rayon_packets_per_sec": pps(cached_rayon_s),
        "cache_hit_rate": cache_stats.hit_rate(),
        "unique_signatures": cache_stats.unique_signatures(),
        "cache_evictions": cache_stats.evictions,
        "group_by_packet_ms": group_hashmap_s * 1e3,
        "group_packet_index_ms": group_index_s * 1e3,
        "merge_logs_recorded_ms": merge_recorded_s * 1e3,
        "merge_kway_mevents_per_sec": merge_kway_eps / 1e6,
        "merge_parallel_mevents_per_sec": merge_parallel_eps / 1e6,
        "merge_partitions": merge_partitions,
        "merge_by_k_ms": serde_json::Value::Object(merge_by_k),
        "telemetry_packets_per_sec": pps(telemetry_warm_s),
        "telemetry_overhead_ratio": telemetry_warm_s / cached_warm_s,
        // Mean per-run stage time from the instrumented pass (includes the
        // one cold run that fills the cache, hence transition > rehydrate
        // even at a high hit rate).
        "stage_breakdown_ms": {
            "merge": stage_ms(&telemetry, "merge"),
            "index": stage_ms(&telemetry, "index"),
            "signature": stage_ms(&telemetry, "signature"),
            "cache": stage_ms(&telemetry, "cache"),
            "transition": stage_ms(&telemetry, "transition"),
            "rehydrate": stage_ms(&telemetry, "rehydrate"),
        },
        // Totals over all instrumented passes; the warm passes rehydrate,
        // so these are dominated by the single cold pass.
        "fsm_steps": telemetry.counter("fsm_steps"),
        "fsm_jump_transitions": telemetry.counter("fsm_jump_transitions"),
        "fsm_forced_steps": telemetry.counter("fsm_forced_steps"),
        "stream_records": stream_records,
        "stream_frames_decoded": stream_frames.decoded,
        "stream_frames_corrupt": stream_frames.corrupt,
        "stream_packets": stream_packets,
        "stream_cold_records_per_sec": stream_records as f64 / stream_cold_s,
        "stream_cold_packets_per_sec": stream_packets as f64 / stream_cold_s,
        "peak_rss_kib": peak_rss_kib(),
    });

    let out = std::env::var("REFILL_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reconstruction.json").into()
    });
    let mut body = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    body.push('\n');
    std::fs::write(&out, body).expect("write BENCH_reconstruction.json");
    eprintln!(
        "[bench] wrote {out}: {:.0} packets/sec sequential, {:.0} rayon, {:.0} crossbeam(4)",
        pps(sequential_s),
        pps(rayon_s),
        pps(crossbeam4_s),
    );
    eprintln!(
        "[bench] cached: {:.0} cold, {:.0} warm, {:.0} rayon warm ({:.1}% hit rate, {} unique shapes)",
        pps(cached_cold_s),
        pps(cached_warm_s),
        pps(cached_rayon_s),
        cache_stats.hit_rate() * 100.0,
        cache_stats.unique_signatures(),
    );
    eprintln!(
        "[bench] telemetry: {:.0} packets/sec instrumented ({:.2}x of plain warm)",
        pps(telemetry_warm_s),
        telemetry_warm_s / cached_warm_s,
    );
    eprintln!(
        "[bench] merge (K=1200): {:.1} Mevents/sec loser tree, {:.1} Mevents/sec partitioned ({} partitions)",
        merge_kway_eps / 1e6,
        merge_parallel_eps / 1e6,
        merge_partitions,
    );
    eprintln!(
        "[bench] stream: {} records replayed cold at {:.0} records/sec ({:.0} packets/sec, {} corrupt frames)",
        stream_records,
        stream_records as f64 / stream_cold_s,
        stream_packets as f64 / stream_cold_s,
        stream_frames.corrupt,
    );
}
