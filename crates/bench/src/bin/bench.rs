//! Perf snapshot: measures reconstruction throughput on a fixed scenario
//! and writes `BENCH_reconstruction.json` at the repo root, so successive
//! changes to the hot path leave a comparable trajectory.
//!
//! Run with: `cargo run --release -p bench --bin bench`
//!
//! * `REFILL_BENCH_OUT` — override the output path
//! * `REFILL_BENCH_REPS` — measured repetitions per driver (default 3)
//! * `REFILL_BENCH_WORKERS` — worker threads for the fused columnar
//!   driver (default: available parallelism)

use bench::synth_merge_logs;
use bench::{BenchSnapshot, ScenarioInfo, StageBreakdownMs};
use citysee::{run_scenario, Scenario};
use eventlog::columnar::ColumnarIndex;
use eventlog::{merge_logs_kway, merge_logs_partitioned, merge_logs_recorded, merge_logs_store};
use refill::parallel::{
    reconstruct_crossbeam, reconstruct_fused, reconstruct_rayon, reconstruct_rayon_cached,
};
use refill::provenance::{ProvenanceSink, TraceSampler};
use refill::sigcache::SigCache;
use refill::telemetry::{AtomicRecorder, Recorder, TelemetrySnapshot};
use refill::trace::{CtpVocabulary, Reconstructor};
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

/// Peak resident set size in kiB from `/proc/self/status` (Linux-only; the
/// snapshot records `null` elsewhere — RSS is a nice-to-have, not a gate).
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Mean seconds per call over `reps` measured calls (after one warm-up).
fn time_call<T>(mut f: impl FnMut() -> T, reps: u32) -> f64 {
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / f64::from(reps)
}

fn main() {
    let reps: u32 = std::env::var("REFILL_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let workers: usize = std::env::var("REFILL_BENCH_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    let scenario = Scenario {
        days: 3,
        ..Scenario::small()
    };
    eprintln!(
        "[bench] perf snapshot on '{}': {} nodes, {} days, {} reps",
        scenario.name, scenario.nodes, scenario.days, reps
    );
    let campaign = run_scenario(&scenario);
    let recon = Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink());
    let index = campaign.merged.packet_index();
    let packets = index.len();
    let events = campaign.merged.len();
    eprintln!("[bench] {packets} packets, {events} merged events");

    let group_hashmap_s = time_call(|| campaign.merged.by_packet(), reps);
    let group_index_s = time_call(|| campaign.merged.packet_index(), reps);
    let sequential_s = time_call(|| recon.reconstruct_log(&campaign.merged), reps);
    let rayon_s = time_call(|| reconstruct_rayon(&recon, &campaign.merged), reps);
    let crossbeam4_s = time_call(|| reconstruct_crossbeam(&recon, &campaign.merged, 4), reps);

    // The fused columnar pipeline, end to end from the raw per-node logs:
    // merge packs straight into the SoA store, the permutation index
    // replaces grouping, and the size-aware work-stealing scheduler runs
    // the packets. Comparable to `sequential`/`rayon` above, which pay for
    // merge in a separate measurement — so fused is measured from the same
    // starting line (collected logs) and still includes its own merge.
    let fused_s = time_call(|| reconstruct_fused(&recon, &campaign.collected, workers), reps);
    // Memory shape of the packed store itself.
    let store = merge_logs_store(&campaign.collected);
    let bytes_per_event = (store.heap_bytes() as f64) / (store.len().max(1) as f64);

    // Cached variants. Cold builds (and fills) a fresh cache every call —
    // the first-sight cost including canonicalization and template
    // publication; warm shares one cache across calls — the steady-state
    // cost, which is what a long-running collection service sees.
    let cached_cold_s = time_call(
        || {
            let cache = SigCache::default();
            recon.reconstruct_log_cached(&campaign.merged, &cache)
        },
        reps,
    );
    let shared = SigCache::default();
    let cached_warm_s = time_call(|| recon.reconstruct_log_cached(&campaign.merged, &shared), reps);
    let cached_rayon_s = time_call(
        || reconstruct_rayon_cached(&recon, &campaign.merged, &shared),
        reps,
    );
    let cache_stats = shared.stats();

    // Provenance capture overhead: the same warm cached pass with a
    // full-capture ledger sink attached. The baseline is `cached_warm`
    // above — a reconstructor simply *without* a sink is the disabled
    // path, so the ratio prices ledger capture at 100% sampling.
    let prov_sink = Arc::new(ProvenanceSink::new(TraceSampler::always()));
    let prov_recon = Reconstructor::new(CtpVocabulary::citysee())
        .with_sink(campaign.topology.sink())
        .with_provenance(Arc::clone(&prov_sink));
    let prov_warm_s = time_call(
        || prov_recon.reconstruct_log_cached(&campaign.merged, &shared),
        reps,
    );

    // Narrative cost: mean time to build one packet's explanation from a
    // finished report (ledger entry + diagnosis + rule text).
    let explain_reports = recon.reconstruct_log_cached(&campaign.merged, &shared);
    let explain_diagnoser = refill::Diagnoser::new().with_sink(campaign.topology.sink());
    let explain_s = time_call(
        || {
            explain_reports
                .iter()
                .map(|r| refill::explain::explain(r, &explain_diagnoser, None))
                .count()
        },
        reps,
    );
    let explain_us_per_flow = explain_s * 1e6 / (explain_reports.len().max(1) as f64);

    // Instrumented pass: the same warm cached reconstruction with a live
    // recorder attached, so the snapshot gets a real stage breakdown and
    // the throughput delta vs `cached_warm` measures telemetry overhead.
    // An explicit recorded merge gives the merge stage a span too.
    let recorder = Arc::new(AtomicRecorder::new());
    let recorded_recon = Reconstructor::new(CtpVocabulary::citysee())
        .with_sink(campaign.topology.sink())
        .with_recorder({
            let shared: Arc<dyn Recorder> = Arc::clone(&recorder);
            shared
        });
    let recorded_cache = SigCache::default().with_recorder({
        let shared: Arc<dyn Recorder> = Arc::clone(&recorder);
        shared
    });
    let merge_recorded_s = time_call(|| merge_logs_recorded(&campaign.collected, &*recorder), reps);

    // Instrumented fused pass, on its own recorder so the columnar stage
    // spans (pack, schedule) and counters (steals, arena reuse) are not
    // mixed into the legacy instrumented pass's figures.
    let col_recorder = Arc::new(AtomicRecorder::new());
    let col_recon = Reconstructor::new(CtpVocabulary::citysee())
        .with_sink(campaign.topology.sink())
        .with_recorder({
            let shared: Arc<dyn Recorder> = Arc::clone(&col_recorder);
            shared
        });
    let _ = time_call(
        || reconstruct_fused(&col_recon, &campaign.collected, workers),
        reps,
    );
    let col_passes = u64::from(reps) + 1;
    let col_snap = col_recorder.snapshot();
    let steal_count = col_snap.counter("sched_steals") / col_passes;
    let arena_acquires = col_snap.counter("arena_acquires");
    let arena_grows = col_snap.counter("arena_grows");
    let arena_reuse_ratio = if arena_acquires > 0 {
        1.0 - (arena_grows as f64) / (arena_acquires as f64)
    } else {
        0.0
    };

    // Merge fan-in sweep on synthetic sorted logs: the sequential loser
    // tree vs the time-partitioned parallel front-end at the paper's
    // deployment scale (K = 1200 nodes) and two smaller fan-ins, fixed
    // total event count. The headline fields report K = 1200; the per-K
    // map keeps the whole sweep. The partition count the auto path
    // actually picks is read back from a recorded merge.
    let merge_sweep_total = 1_200_000usize;
    let mut merge_by_k = serde_json::Map::new();
    let mut merge_kway_eps = 0.0f64;
    let mut merge_parallel_eps = 0.0f64;
    for k in [60usize, 300, 1200] {
        let logs = synth_merge_logs(k, merge_sweep_total);
        let sweep_events: usize = logs.iter().map(|l| l.len()).sum();
        let kway_s = time_call(|| merge_logs_kway(&logs), reps);
        let parallel_s = time_call(
            || merge_logs_partitioned(&logs, rayon::current_num_threads()),
            reps,
        );
        if k == 1200 {
            merge_kway_eps = sweep_events as f64 / kway_s;
            merge_parallel_eps = sweep_events as f64 / parallel_s;
        }
        merge_by_k.insert(
            format!("k{k}"),
            json!({
                "events": sweep_events,
                "loser_tree_ms": kway_s * 1e3,
                "partitioned_ms": parallel_s * 1e3,
            }),
        );
    }
    let merge_partitions = {
        let rec = AtomicRecorder::new();
        let _ = merge_logs_recorded(&synth_merge_logs(1200, merge_sweep_total), &rec);
        rec.snapshot().counter("merge_partitions")
    };
    let telemetry_warm_s = time_call(
        || recorded_recon.reconstruct_log_cached(&campaign.merged, &recorded_cache),
        reps,
    );
    // Streaming path: the same campaign replayed cold through the framed
    // online pipeline (resynchronizing decode, watermark windowing,
    // incremental redo), the way a restarted collection service would.
    let replay = refill_stream::Replay::from_campaign(&campaign, f64::INFINITY);
    let stream_bytes = replay.encode();
    let stream_records = replay.records().len();
    let mut stream_packets = 0usize;
    let mut stream_frames = eventlog::frame::FrameStats::default();
    let stream_cold_s = time_call(
        || {
            let mut stream = refill_stream::StreamReconstructor::new(
                Reconstructor::new(CtpVocabulary::citysee()).with_sink(campaign.topology.sink()),
            );
            let summary = refill_stream::run_stream(
                std::io::Cursor::new(&stream_bytes),
                &mut stream,
                refill_stream::DriverConfig::default(),
                |_| {},
            )
            .expect("in-memory replay does not fail");
            stream_packets = summary.reports.len();
            stream_frames = summary.frames;
            summary.stats.records
        },
        reps,
    );

    // Durable segment store: append the campaign's packed rows into a
    // fresh on-disk store (open + chunked appends + fsync), full-scan it
    // through the query engine, and reopen it cold — the crash recovery
    // scan. Each append rep rebuilds the directory from scratch so the
    // timing never measures an already-populated store; the last rep's
    // store stays on disk for the query and recovery measurements.
    let store_dir = std::env::temp_dir().join(format!("refill-bench-store-{}", std::process::id()));
    let event_rows: Vec<(eventlog::PackedEvent, u64)> = store
        .records()
        .iter()
        .copied()
        .zip(store.ts_column().iter().copied())
        .collect();
    let store_append_s = time_call(
        || {
            let _ = std::fs::remove_dir_all(&store_dir);
            std::fs::create_dir_all(&store_dir).expect("create store dir");
            let (seg, _) = refill_store::SegmentStore::open(&store_dir).expect("open store");
            let mut seg = seg.with_roll_bytes(4 * 1024 * 1024);
            for chunk in event_rows.chunks(64 * 1024) {
                seg.append_events(chunk).expect("append events");
            }
            seg.sync().expect("sync store");
            seg.total_events()
        },
        reps,
    );
    let (seg, _) = refill_store::SegmentStore::open(&store_dir).expect("reopen store");
    let store_segments = seg.segments().len();
    let query_scan_s = time_call(
        || {
            let out = seg
                .query(&refill_store::Query::default())
                .expect("full-scan query");
            assert_eq!(out.stats.event_rows_matched, event_rows.len() as u64);
            out.stats.event_rows_scanned
        },
        reps,
    );
    drop(seg);
    let recovery_s = time_call(
        || {
            let (seg, report) = refill_store::SegmentStore::open(&store_dir).expect("recovery open");
            assert_eq!(seg.total_events(), event_rows.len() as u64);
            report.segments
        },
        reps,
    );
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_meps = |secs: f64| event_rows.len() as f64 / secs / 1e6;

    let telemetry = recorder.snapshot();
    // Stage totals accumulate over every call, including the warm-up, so
    // the per-run figure divides by reps + 1.
    let passes = f64::from(reps + 1);
    let stage_ms = |snapshot: &TelemetrySnapshot, name: &str| {
        snapshot.stage(name).map(|s| s.total_ns as f64 / 1e6 / passes)
    };

    let pps = |secs: f64| packets as f64 / secs;
    let snapshot = BenchSnapshot {
        bench: "reconstruction".into(),
        generated: true,
        note: None,
        scenario: ScenarioInfo {
            name: scenario.name.clone(),
            nodes: scenario.nodes as u64,
            days: u64::from(scenario.days),
            seed: scenario.seed,
        },
        packets: Some(packets as u64),
        merged_events: Some(events as u64),
        reps,
        sequential_packets_per_sec: Some(pps(sequential_s)),
        rayon_packets_per_sec: Some(pps(rayon_s)),
        crossbeam4_packets_per_sec: Some(pps(crossbeam4_s)),
        columnar_packets_per_sec: Some(pps(fused_s)),
        bytes_per_event: Some(bytes_per_event),
        steal_count: Some(steal_count),
        arena_reuse_ratio: Some(arena_reuse_ratio),
        cached_cold_packets_per_sec: Some(pps(cached_cold_s)),
        cached_warm_packets_per_sec: Some(pps(cached_warm_s)),
        cached_rayon_packets_per_sec: Some(pps(cached_rayon_s)),
        cache_hit_rate: Some(cache_stats.hit_rate()),
        unique_signatures: Some(cache_stats.unique_signatures()),
        cache_evictions: Some(cache_stats.evictions),
        group_by_packet_ms: Some(group_hashmap_s * 1e3),
        group_packet_index_ms: Some(group_index_s * 1e3),
        merge_logs_recorded_ms: Some(merge_recorded_s * 1e3),
        merge_kway_mevents_per_sec: Some(merge_kway_eps / 1e6),
        merge_parallel_mevents_per_sec: Some(merge_parallel_eps / 1e6),
        merge_partitions: Some(merge_partitions),
        merge_by_k_ms: Some(serde_json::Value::Object(merge_by_k)),
        telemetry_packets_per_sec: Some(pps(telemetry_warm_s)),
        telemetry_overhead_ratio: Some(telemetry_warm_s / cached_warm_s),
        provenance_overhead_ratio: Some(prov_warm_s / cached_warm_s),
        explain_us_per_flow: Some(explain_us_per_flow),
        // Mean per-run stage time from the instrumented passes (the legacy
        // pass includes the one cold run that fills the cache, hence
        // transition > rehydrate even at a high hit rate).
        stage_breakdown_ms: StageBreakdownMs {
            merge: stage_ms(&telemetry, "merge"),
            pack: stage_ms(&col_snap, "pack"),
            index: stage_ms(&telemetry, "index"),
            schedule: stage_ms(&col_snap, "schedule"),
            signature: stage_ms(&telemetry, "signature"),
            cache: stage_ms(&telemetry, "cache"),
            transition: stage_ms(&telemetry, "transition"),
            rehydrate: stage_ms(&telemetry, "rehydrate"),
        },
        // Totals over all instrumented passes; the warm passes rehydrate,
        // so these are dominated by the single cold pass.
        fsm_steps: Some(telemetry.counter("fsm_steps")),
        fsm_jump_transitions: Some(telemetry.counter("fsm_jump_transitions")),
        fsm_forced_steps: Some(telemetry.counter("fsm_forced_steps")),
        stream_records: Some(stream_records as u64),
        stream_frames_decoded: Some(stream_frames.decoded),
        stream_frames_corrupt: Some(stream_frames.corrupt),
        stream_packets: Some(stream_packets as u64),
        stream_cold_records_per_sec: Some(stream_records as f64 / stream_cold_s),
        stream_cold_packets_per_sec: Some(stream_packets as f64 / stream_cold_s),
        store_append_mevents_per_sec: Some(store_meps(store_append_s)),
        query_scan_mevents_per_sec: Some(store_meps(query_scan_s)),
        recovery_ms: Some(recovery_s * 1e3),
        peak_rss_kib: peak_rss_kib(),
    };

    let out = std::env::var("REFILL_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reconstruction.json").into()
    });
    std::fs::write(&out, snapshot.to_json_pretty()).expect("write BENCH_reconstruction.json");
    eprintln!(
        "[bench] wrote {out}: {:.0} packets/sec sequential, {:.0} rayon, {:.0} crossbeam(4)",
        pps(sequential_s),
        pps(rayon_s),
        pps(crossbeam4_s),
    );
    eprintln!(
        "[bench] columnar fused({workers}): {:.0} packets/sec, {:.1} bytes/event, \
         {steal_count} steals/pass, {:.2} arena reuse",
        pps(fused_s),
        bytes_per_event,
        arena_reuse_ratio,
    );
    eprintln!(
        "[bench] cached: {:.0} cold, {:.0} warm, {:.0} rayon warm ({:.1}% hit rate, {} unique shapes)",
        pps(cached_cold_s),
        pps(cached_warm_s),
        pps(cached_rayon_s),
        cache_stats.hit_rate() * 100.0,
        cache_stats.unique_signatures(),
    );
    eprintln!(
        "[bench] telemetry: {:.0} packets/sec instrumented ({:.2}x of plain warm)",
        pps(telemetry_warm_s),
        telemetry_warm_s / cached_warm_s,
    );
    eprintln!(
        "[bench] provenance: {:.2}x of plain warm at full capture ({} flows in the ledger), \
         {:.1} us/flow to explain",
        prov_warm_s / cached_warm_s,
        prov_sink.ledger().len(),
        explain_us_per_flow,
    );
    eprintln!(
        "[bench] merge (K=1200): {:.1} Mevents/sec loser tree, {:.1} Mevents/sec partitioned ({} partitions)",
        merge_kway_eps / 1e6,
        merge_parallel_eps / 1e6,
        merge_partitions,
    );
    eprintln!(
        "[bench] stream: {} records replayed cold at {:.0} records/sec ({:.0} packets/sec, {} corrupt frames)",
        stream_records,
        stream_records as f64 / stream_cold_s,
        stream_packets as f64 / stream_cold_s,
        stream_frames.corrupt,
    );
    eprintln!(
        "[bench] store: {:.1} Mevents/sec append, {:.1} Mevents/sec full scan, \
         {:.1} ms recovery open ({} segments)",
        store_meps(store_append_s),
        store_meps(query_scan_s),
        recovery_s * 1e3,
        store_segments,
    );
    // Keep the default driver honest: the fused path built its index off
    // the packed store with zero intermediate merged Vec<Event>; assert
    // the store round-trips the same packet population.
    let col_index = ColumnarIndex::build(&store);
    assert_eq!(col_index.len(), packets, "columnar index covers every packet");
}
