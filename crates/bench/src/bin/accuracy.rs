//! Accuracy sweep (extension experiment): how REFILL's inference and
//! diagnosis degrade with log loss, against the baselines.
//!
//! The paper could not score itself (no ground truth in a real deployment);
//! the simulation substrate can. We sweep the collection chunk-loss
//! probability and report, per level: inferred-event precision/recall,
//! cause and position accuracy, and the baselines' accuracy on the same
//! inputs.

use citysee::{analyze, run_scenario, Scenario};
use eventlog::collect::CollectionConfig;

fn main() {
    let mut scenario = bench::scenario_from_env();
    // Accuracy sweeps are heavy; default to fewer days unless pinned.
    if std::env::var("REFILL_DAYS").is_err() {
        scenario.days = scenario.days.min(10);
    }
    let levels = [0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8];
    let mut csv = String::from(
        "chunk_loss,precision,recall,cause_acc,position_acc,delivery_acc,path_prefix,\
         naive_position_acc,correlation_cause_acc\n",
    );
    println!(
        "{:>10} {:>9} {:>7} {:>9} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "chunk_loss",
        "precision",
        "recall",
        "cause",
        "position",
        "delivery",
        "path",
        "naive(pos)",
        "corr(cause)"
    );
    for &loss in &levels {
        let s = Scenario {
            collection: CollectionConfig {
                whole_log_loss_prob: 0.01,
                chunk_entries: 8,
                chunk_loss_prob: loss,
            },
            ..scenario.clone()
        };
        let campaign = run_scenario(&s);
        let a = analyze(&campaign);
        let naive_acc = if a.naive.true_losses == 0 {
            1.0
        } else {
            a.naive.position_correct as f64 / a.naive.true_losses as f64
        };
        let corr_acc = if a.correlation.total == 0 {
            1.0
        } else {
            a.correlation.cause_correct as f64 / a.correlation.total as f64
        };
        println!(
            "{:>10.2} {:>9.3} {:>7.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>11.3} {:>11.3}",
            loss,
            a.flow_score.precision(),
            a.flow_score.recall(),
            a.cause_score.cause_accuracy(),
            a.cause_score.position_accuracy(),
            a.cause_score.delivery_accuracy(),
            a.path_score.prefix_coverage(),
            naive_acc,
            corr_acc,
        );
        csv.push_str(&format!(
            "{:.2},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            loss,
            a.flow_score.precision(),
            a.flow_score.recall(),
            a.cause_score.cause_accuracy(),
            a.cause_score.position_accuracy(),
            a.cause_score.delivery_accuracy(),
            a.path_score.prefix_coverage(),
            naive_acc,
            corr_acc,
        ));
    }
    bench::write_artifact("accuracy_sweep.csv", &csv);
    println!("\nWit-style merging on local logs is always fully disconnected (see `ablation`).");
}
