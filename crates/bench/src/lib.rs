//! Shared plumbing for the figure-regeneration binaries and benches.
//!
//! Every `figN`/`tableN` binary runs a CitySee campaign, applies REFILL,
//! prints the figure's data (ASCII summary to stdout) and writes CSVs under
//! `results/`. The campaign scale is controlled by environment variables so
//! the same binaries serve quick checks and paper-scale runs:
//!
//! * `REFILL_SCALE` — `small` | `standard` (default) | `paper`
//! * `REFILL_SEED` — override the master seed
//! * `REFILL_NODES`, `REFILL_DAYS` — override individual dimensions

use citysee::{analyze, run_scenario, Analysis, Campaign, Scenario};
use std::path::{Path, PathBuf};

/// Resolve the scenario from the environment (see module docs).
pub fn scenario_from_env() -> Scenario {
    let mut s = match std::env::var("REFILL_SCALE").as_deref() {
        Ok("small") => Scenario::small(),
        Ok("paper") => Scenario::paper(),
        _ => Scenario::standard(),
    };
    if let Ok(seed) = std::env::var("REFILL_SEED") {
        if let Ok(v) = seed.parse() {
            s.seed = v;
        }
    }
    if let Ok(nodes) = std::env::var("REFILL_NODES") {
        if let Ok(v) = nodes.parse::<usize>() {
            // Keep density constant when resizing.
            let density_side = s.side_m / (s.nodes as f64).sqrt();
            s.nodes = v;
            s.side_m = density_side * (v as f64).sqrt();
        }
    }
    if let Ok(days) = std::env::var("REFILL_DAYS") {
        if let Ok(v) = days.parse() {
            s.days = v;
        }
    }
    s
}

/// Run and analyze the environment-selected scenario, logging progress.
pub fn run_and_analyze() -> (Campaign, Analysis) {
    let scenario = scenario_from_env();
    eprintln!(
        "[bench] running scenario '{}': {} nodes, {} days (set REFILL_SCALE=small|standard|paper)",
        scenario.name, scenario.nodes, scenario.days
    );
    let t0 = std::time::Instant::now();
    let campaign = run_scenario(&scenario);
    eprintln!(
        "[bench] simulated {} packets, {} events in {:.1?}",
        campaign.sim.counters.get("generated"),
        campaign.sim.truth.events.len(),
        t0.elapsed()
    );
    let t1 = std::time::Instant::now();
    let analysis = analyze(&campaign);
    eprintln!(
        "[bench] analyzed {} packets in {:.1?}",
        analysis.records.len(),
        t1.elapsed()
    );
    (campaign, analysis)
}

/// The output directory for CSV artifacts (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("REFILL_RESULTS").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Write a text artifact and echo its path.
pub fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write artifact");
    eprintln!("[bench] wrote {}", path.display());
    path
}

/// True when a file exists (test helper).
pub fn artifact_exists(path: &Path) -> bool {
    path.is_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_is_standard() {
        // Only valid when env overrides are absent; guard accordingly.
        if std::env::var("REFILL_SCALE").is_err() && std::env::var("REFILL_NODES").is_err() {
            let s = scenario_from_env();
            assert_eq!(s.name, "citysee-standard");
        }
    }

    #[test]
    fn artifacts_roundtrip() {
        std::env::set_var("REFILL_RESULTS", std::env::temp_dir().join("refill-test-results"));
        let p = write_artifact("probe.txt", "hello");
        assert!(artifact_exists(&p));
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello");
    }
}
