//! Shared plumbing for the figure-regeneration binaries and benches.
//!
//! Every `figN`/`tableN` binary runs a CitySee campaign, applies REFILL,
//! prints the figure's data (ASCII summary to stdout) and writes CSVs under
//! `results/`. The campaign scale is controlled by environment variables so
//! the same binaries serve quick checks and paper-scale runs:
//!
//! * `REFILL_SCALE` — `small` | `standard` (default) | `paper`
//! * `REFILL_SEED` — override the master seed
//! * `REFILL_NODES`, `REFILL_DAYS` — override individual dimensions

use citysee::{analyze, run_scenario, Analysis, Campaign, Scenario};
use eventlog::logger::{LocalLog, LogEntry};
use eventlog::{Event, EventKind, PacketId};
use netsim::NodeId;
use std::path::{Path, PathBuf};

pub mod snapshot;
pub use snapshot::{BenchSnapshot, ScenarioInfo, StageBreakdownMs};

/// Resolve the scenario from the environment (see module docs).
pub fn scenario_from_env() -> Scenario {
    let mut s = match std::env::var("REFILL_SCALE").as_deref() {
        Ok("small") => Scenario::small(),
        Ok("paper") => Scenario::paper(),
        _ => Scenario::standard(),
    };
    if let Ok(seed) = std::env::var("REFILL_SEED") {
        if let Ok(v) = seed.parse() {
            s.seed = v;
        }
    }
    if let Ok(nodes) = std::env::var("REFILL_NODES") {
        if let Ok(v) = nodes.parse::<usize>() {
            // Keep density constant when resizing.
            let density_side = s.side_m / (s.nodes as f64).sqrt();
            s.nodes = v;
            s.side_m = density_side * (v as f64).sqrt();
        }
    }
    if let Ok(days) = std::env::var("REFILL_DAYS") {
        if let Ok(v) = days.parse() {
            s.days = v;
        }
    }
    s
}

/// Run and analyze the environment-selected scenario, logging progress.
pub fn run_and_analyze() -> (Campaign, Analysis) {
    let scenario = scenario_from_env();
    eprintln!(
        "[bench] running scenario '{}': {} nodes, {} days (set REFILL_SCALE=small|standard|paper)",
        scenario.name, scenario.nodes, scenario.days
    );
    let t0 = std::time::Instant::now();
    let campaign = run_scenario(&scenario);
    eprintln!(
        "[bench] simulated {} packets, {} events in {:.1?}",
        campaign.sim.counters.get("generated"),
        campaign.sim.truth.events.len(),
        t0.elapsed()
    );
    let t1 = std::time::Instant::now();
    let analysis = analyze(&campaign);
    eprintln!(
        "[bench] analyzed {} packets in {:.1?}",
        analysis.records.len(),
        t1.elapsed()
    );
    (campaign, analysis)
}

/// K sorted per-node logs totalling ~`total` events — the merge fan-in
/// shape of a CitySee deployment (K nodes reporting one interleaved day).
/// Each log is sorted by `local_ts` with a deterministic per-node phase,
/// so timestamps interleave densely across logs and collide across nodes,
/// which is the worst case for merge tie-breaking and the intended case
/// for time partitioning.
pub fn synth_merge_logs(k: usize, total: usize) -> Vec<LocalLog> {
    let per = total / k.max(1);
    (0..k)
        .map(|i| {
            let node = NodeId(i as u16 + 1);
            LocalLog {
                node,
                entries: (0..per)
                    .map(|j| LogEntry {
                        event: Event::new(node, EventKind::Origin, PacketId::new(node, j as u32)),
                        local_ts: Some(j as u64 * 1_000 + (i as u64 * 37) % 1_000),
                    })
                    .collect(),
            }
        })
        .collect()
}

/// The output directory for CSV artifacts (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("REFILL_RESULTS").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Write a text artifact and echo its path.
pub fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write artifact");
    eprintln!("[bench] wrote {}", path.display());
    path
}

/// True when a file exists (test helper).
pub fn artifact_exists(path: &Path) -> bool {
    path.is_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_is_standard() {
        // Only valid when env overrides are absent; guard accordingly.
        if std::env::var("REFILL_SCALE").is_err() && std::env::var("REFILL_NODES").is_err() {
            let s = scenario_from_env();
            assert_eq!(s.name, "citysee-standard");
        }
    }

    #[test]
    fn synth_merge_logs_are_sorted_and_merge_identically() {
        let logs = synth_merge_logs(7, 700);
        assert_eq!(logs.len(), 7);
        for l in &logs {
            assert!(l.entries.windows(2).all(|w| w[0].local_ts <= w[1].local_ts));
        }
        let seq = eventlog::merge_logs_kway(&logs).events;
        assert_eq!(eventlog::merge_logs(&logs).events, seq);
        assert_eq!(eventlog::merge_logs_partitioned(&logs, 4).events, seq);
    }

    #[test]
    fn artifacts_roundtrip() {
        std::env::set_var("REFILL_RESULTS", std::env::temp_dir().join("refill-test-results"));
        let p = write_artifact("probe.txt", "hello");
        assert!(artifact_exists(&p));
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello");
    }
}
