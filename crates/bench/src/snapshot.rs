//! The schema of `BENCH_reconstruction.json`, in one place.
//!
//! The checked-in snapshot at the repo root and the writer in
//! `src/bin/bench.rs` used to agree only by convention — a field added to
//! the writer's `json!` block silently drifted from the placeholder until
//! someone diffed them by hand. Both now go through [`BenchSnapshot`]:
//! the writer constructs one and serializes it, and the schema test below
//! parses the checked-in file with `deny_unknown_fields` (stale keys fail)
//! and compares full key sets (missing keys fail). The schema cannot
//! diverge without a test telling you which side moved.
//!
//! Every measured field is an `Option`: `None` serializes as `null`, which
//! is what the placeholder carries in environments that cannot run the
//! bench.

use serde::{Deserialize, Serialize};

/// The fixed scenario the snapshot was measured on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(deny_unknown_fields, default)]
pub struct ScenarioInfo {
    pub name: String,
    pub nodes: u64,
    pub days: u64,
    pub seed: u64,
}

/// Mean per-run stage times from the instrumented passes, in milliseconds.
/// `merge`..`rehydrate` come from the legacy instrumented pass; `pack`
/// (fused merge-and-pack) and `schedule` (batch planning) from the
/// columnar one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(deny_unknown_fields, default)]
pub struct StageBreakdownMs {
    pub merge: Option<f64>,
    pub pack: Option<f64>,
    pub index: Option<f64>,
    pub schedule: Option<f64>,
    pub signature: Option<f64>,
    pub cache: Option<f64>,
    pub transition: Option<f64>,
    pub rehydrate: Option<f64>,
}

/// Everything `BENCH_reconstruction.json` holds. Field order here is the
/// serialization order of the generated file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(deny_unknown_fields, default)]
pub struct BenchSnapshot {
    pub bench: String,
    pub generated: bool,
    /// Present (with an explanation) when the numbers are placeholders.
    pub note: Option<String>,
    pub scenario: ScenarioInfo,
    pub packets: Option<u64>,
    pub merged_events: Option<u64>,
    pub reps: u32,
    pub sequential_packets_per_sec: Option<f64>,
    pub rayon_packets_per_sec: Option<f64>,
    pub crossbeam4_packets_per_sec: Option<f64>,
    /// The fused columnar pipeline (packed merge → permutation index →
    /// work-stealing reconstruction), end to end.
    pub columnar_packets_per_sec: Option<f64>,
    /// Heap bytes per event in the packed store (records + ts column,
    /// capacity-based) — the SoA memory headline.
    pub bytes_per_event: Option<f64>,
    /// Mean successful batch steals per fused pass.
    pub steal_count: Option<u64>,
    /// 1 − arena grows / arena acquires over the fused passes: the share
    /// of group unpacks served without reallocating.
    pub arena_reuse_ratio: Option<f64>,
    pub cached_cold_packets_per_sec: Option<f64>,
    pub cached_warm_packets_per_sec: Option<f64>,
    pub cached_rayon_packets_per_sec: Option<f64>,
    pub cache_hit_rate: Option<f64>,
    pub unique_signatures: Option<u64>,
    pub cache_evictions: Option<u64>,
    pub group_by_packet_ms: Option<f64>,
    pub group_packet_index_ms: Option<f64>,
    pub merge_logs_recorded_ms: Option<f64>,
    pub merge_kway_mevents_per_sec: Option<f64>,
    pub merge_parallel_mevents_per_sec: Option<f64>,
    pub merge_partitions: Option<u64>,
    /// Per-fan-in merge sweep; free-form because the K set may change.
    pub merge_by_k_ms: Option<serde_json::Value>,
    pub telemetry_packets_per_sec: Option<f64>,
    pub telemetry_overhead_ratio: Option<f64>,
    /// Warm cached pass with a full-capture provenance sink attached,
    /// relative to the same pass with no sink (the zero-cost disabled
    /// path) — the price of ledger capture at 100% sampling.
    pub provenance_overhead_ratio: Option<f64>,
    /// Mean microseconds to build one packet's explanation narrative
    /// (ledger entry + diagnosis + rule text) from a finished report.
    pub explain_us_per_flow: Option<f64>,
    pub stage_breakdown_ms: StageBreakdownMs,
    pub fsm_steps: Option<u64>,
    pub fsm_jump_transitions: Option<u64>,
    pub fsm_forced_steps: Option<u64>,
    pub stream_records: Option<u64>,
    pub stream_frames_decoded: Option<u64>,
    pub stream_frames_corrupt: Option<u64>,
    pub stream_packets: Option<u64>,
    pub stream_cold_records_per_sec: Option<f64>,
    pub stream_cold_packets_per_sec: Option<f64>,
    /// Durable segment store: event-row append throughput (open + chunked
    /// appends + fsync into a fresh directory).
    pub store_append_mevents_per_sec: Option<f64>,
    /// Full-scan query throughput over the persisted store (every block
    /// decoded and CRC-checked, no pushdown skips).
    pub query_scan_mevents_per_sec: Option<f64>,
    /// Cold `SegmentStore::open` on the persisted store — the crash
    /// recovery scan (manifest reconciliation + block validation).
    pub recovery_ms: Option<f64>,
    pub peak_rss_kib: Option<u64>,
}

impl BenchSnapshot {
    /// Serialize with a trailing newline, ready to write to disk.
    pub fn to_json_pretty(&self) -> String {
        let mut body = serde_json::to_string_pretty(self).expect("snapshot serializes");
        body.push('\n');
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checked_in() -> String {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reconstruction.json");
        std::fs::read_to_string(path).expect("checked-in snapshot exists")
    }

    fn keys(v: &serde_json::Value) -> Vec<String> {
        v.as_object()
            .expect("object")
            .keys()
            .cloned()
            .collect()
    }

    /// The checked-in snapshot and the writer schema cannot diverge:
    /// parsing with `deny_unknown_fields` rejects keys the schema dropped,
    /// and key-set equality (serde_json maps iterate sorted) rejects keys
    /// the file is missing — in both directions, nested objects included.
    #[test]
    fn checked_in_snapshot_matches_schema() {
        let body = checked_in();
        let snap: BenchSnapshot =
            serde_json::from_str(&body).expect("checked-in snapshot parses against BenchSnapshot");
        let raw: serde_json::Value = serde_json::from_str(&body).unwrap();
        let ser = serde_json::to_value(&snap).unwrap();
        assert_eq!(keys(&raw), keys(&ser), "top-level keys drifted");
        assert_eq!(keys(&raw["scenario"]), keys(&ser["scenario"]));
        assert_eq!(
            keys(&raw["stage_breakdown_ms"]),
            keys(&ser["stage_breakdown_ms"])
        );
    }

    /// The columnar fields are part of the schema and of the checked-in
    /// file (null until a build environment regenerates them).
    #[test]
    fn snapshot_carries_columnar_fields() {
        let raw: serde_json::Value = serde_json::from_str(&checked_in()).unwrap();
        for key in [
            "columnar_packets_per_sec",
            "bytes_per_event",
            "steal_count",
            "arena_reuse_ratio",
        ] {
            assert!(
                raw.get(key).is_some(),
                "checked-in snapshot is missing {key}"
            );
        }
        assert!(raw["stage_breakdown_ms"].get("pack").is_some());
        assert!(raw["stage_breakdown_ms"].get("schedule").is_some());
    }

    /// Likewise for the provenance/observability fields.
    #[test]
    fn snapshot_carries_provenance_fields() {
        let raw: serde_json::Value = serde_json::from_str(&checked_in()).unwrap();
        for key in ["provenance_overhead_ratio", "explain_us_per_flow"] {
            assert!(
                raw.get(key).is_some(),
                "checked-in snapshot is missing {key}"
            );
        }
    }

    /// Likewise for the durable-store fields.
    #[test]
    fn snapshot_carries_store_fields() {
        let raw: serde_json::Value = serde_json::from_str(&checked_in()).unwrap();
        for key in [
            "store_append_mevents_per_sec",
            "query_scan_mevents_per_sec",
            "recovery_ms",
        ] {
            assert!(
                raw.get(key).is_some(),
                "checked-in snapshot is missing {key}"
            );
        }
    }

    /// Round trip: a default snapshot survives serialize → parse.
    #[test]
    fn default_snapshot_roundtrips() {
        let snap = BenchSnapshot::default();
        let body = snap.to_json_pretty();
        let back: BenchSnapshot = serde_json::from_str(&body).unwrap();
        assert_eq!(snap, back);
    }
}
